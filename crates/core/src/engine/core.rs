//! The backend-agnostic demand-driven scheduling core.
//!
//! [`Engine`] owns the paper's whole scheduling protocol — request-window
//! pumping, reader-side buffer selection (DBSA), receiver-side ready-queue
//! ordering (DDFCFS/DDWRR), GPU-first dispatch, DQAA adaptation, and obs
//! event emission — while delegating everything backend-specific to two
//! small traits: [`Transport`] (what delivering a request costs) and
//! [`Executor`] (how a batch actually runs). A driver is a loop that feeds
//! engine callbacks:
//!
//! * a reader received a request → [`Engine::answer_request`];
//! * a (possibly empty) reply reached a worker → [`Engine::data_arrived`];
//! * a recalculated buffer materialized → [`Engine::recirculate`];
//! * a task completed on a device → [`Engine::task_finished`];
//! * a worker became free → [`Engine::worker_idle`].
//!
//! The DES ([`crate::sim`]), the threaded runtime ([`crate::local`]) and
//! the sequential reference driver ([`super::sequential`]) are all thin
//! shells around these five callbacks.

use std::collections::HashMap;

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::{DurationHistogram, SimDuration, SimTime, UtilizationTracker};

use crate::buffer::DataBuffer;
use crate::faults::RecoveryConfig;
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::Policy;
use crate::queue::SharedQueue;
use crate::weights::{DecisionCtx, WeightProvider};

use super::clock::Clock;
use super::select;
use super::window::{backoff_timeout, RequestWindow};

/// Identity of one worker slot in the engine's topology, echoed through
/// the driver traits so replies and completions find their way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRef {
    /// Hosting node index.
    pub node: usize,
    /// Worker slot index within the node.
    pub worker: usize,
    /// The device the slot schedules for.
    pub device: DeviceId,
}

/// The driver side of request delivery.
///
/// The engine decides *that* a worker requests a buffer from a reader; the
/// driver decides what that costs (a modeled network hop, a channel send,
/// nothing at all) and must eventually route the reader's answer back
/// through [`Engine::answer_request`] followed by [`Engine::data_arrived`]
/// with the same `req_id`.
pub trait Transport {
    /// Deliver a data request from worker `from` to node `reader`'s reader
    /// instance. The requesting processor type is `from.device.kind`.
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64);

    /// Arm a timer that calls [`Engine::request_timed_out`] for `worker`
    /// and `req_id` at `fire_at`, unless the request settles first (the
    /// engine treats a late timeout for a settled request as a no-op, so
    /// drivers need not cancel timers). The default is a no-op: drivers
    /// without a timer simply never time out, which is the pre-recovery
    /// behaviour. Only called when recovery is enabled.
    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        let _ = (worker, req_id, fire_at);
    }
}

/// The driver side of task execution.
///
/// The engine decides *which* buffers a worker runs and in what batch; the
/// driver runs them (virtual-time hardware models, OS threads, real
/// kernels) and reports back via [`Engine::task_finished`] per buffer and
/// [`Engine::worker_idle`] when the slot frees up.
pub trait Executor {
    /// Upper bound on the batch handed to `worker` in one dispatch: 1 for
    /// one-at-a-time devices, the current stream count for an async GPU
    /// manager (Algorithm 1).
    fn batch_limit(&mut self, worker: WorkerRef) -> usize;

    /// Execute `batch` (never empty) on `worker`. The slot counts as busy
    /// until the driver calls [`Engine::worker_idle`].
    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>);
}

/// Engine configuration shared by every backend.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
    /// Fault-recovery knobs (timeouts, retry, health-scaled demand). With
    /// [`RecoveryConfig::disabled`] the engine behaves exactly as before
    /// the fault layer existed — no timers, no weight decay.
    pub recovery: RecoveryConfig,
}

struct WorkerState {
    device: DeviceId,
    window: RequestWindow,
    busy: bool,
    /// Round-robin cursor over readers (starts at the hosting node).
    rr_cursor: usize,
    /// Cleared by [`Engine::worker_died`]; a dead slot never pumps,
    /// dispatches, or wakes again.
    alive: bool,
    /// Set by [`Engine::drain_worker`]: the slot stops pumping demand and
    /// is never dispatched again, but keeps processing its in-flight work
    /// until [`Engine::worker_left`] retires it (Draining → Gone).
    draining: bool,
    /// Degradation estimate in `(0, 1]`: decayed multiplicatively per
    /// transient failure, recovered additively per success. Scales the
    /// slot's effective demand and its kind's ready-queue weights.
    health: f64,
    util: UtilizationTracker,
    /// Target-window trace `(time, target)` per idle transition.
    req_trace: Vec<(SimTime, usize)>,
    latency_hist: DurationHistogram,
    service_hist: DurationHistogram,
}

impl WorkerState {
    /// The health-throttled request-window target: a degraded worker asks
    /// for proportionally less work, shifting demand toward healthy
    /// devices (the honest DDWRR lever — with per-kind uniform weights,
    /// scaling sorted-queue keys alone cannot reorder one device's view,
    /// but shrinking a sick worker's demand reroutes buffers at the
    /// source).
    fn effective_target(&self, recovery: &RecoveryConfig) -> usize {
        let target = self.window.target();
        if !recovery.enabled || self.health >= 1.0 {
            return target;
        }
        ((target as f64 * self.health).ceil() as usize).max(1)
    }
}

struct NodeState {
    /// Reader-side outgoing queue (consumed sorted iff the policy selects
    /// at the sender — DBSA).
    reader: SharedQueue,
    /// Worker-side shared ready queue (consumed sorted iff the policy
    /// sorts at the receiver — DDWRR/ODDS).
    ready: SharedQueue,
    workers: Vec<WorkerState>,
    /// Cached GPU-first dispatch visit order ([`select::dispatch_order`]
    /// over the slot kinds), rebuilt whenever the worker count changes.
    dispatch_order: Vec<usize>,
    /// Which readers this node's workers may request from. `None` (the
    /// default) means *all* nodes — the single-filter n×m stream, whose
    /// round-robin arithmetic is kept bit-identical to the pre-graph
    /// engine. Graph runners scope each filter's workers to that filter's
    /// own input queue, giving every edge its own ODDS/DQAA/DBSA instance.
    scope: Option<Vec<usize>>,
}

/// Per-worker measurement series the engine accumulates, borrowed for
/// report building.
pub struct WorkerStats<'a> {
    /// The worker's device identity.
    pub device: DeviceId,
    /// Busy/idle utilization tracker.
    pub util: &'a UtilizationTracker,
    /// Target-window trace `(time, target)` per idle transition.
    pub req_trace: &'a [(SimTime, usize)],
    /// Request round-trip latencies observed by this worker.
    pub latency_hist: &'a DurationHistogram,
    /// Per-buffer service times on this device.
    pub service_hist: &'a DurationHistogram,
}

/// Metric-label token for a device class.
pub(crate) fn kind_label(k: DeviceKind) -> &'static str {
    match k {
        DeviceKind::Cpu => "cpu",
        DeviceKind::Gpu => "gpu",
    }
}

/// The backend-agnostic scheduling engine (see the module docs).
///
/// Generic over the driver-supplied [`Clock`] and the [`WeightProvider`]
/// whose relative-performance estimates order the sorted queue views.
pub struct Engine<C: Clock, W: WeightProvider> {
    cfg: EngineConfig,
    clock: C,
    weights: W,
    rec: Recorder,
    nodes: Vec<NodeState>,
    next_req_id: u64,
    tasks_by: HashMap<(DeviceKind, u8), u64>,
    /// `(node, device kind, level) -> completed buffers` — the per-filter
    /// view graph runners report from (node = filter id in graph runs).
    tasks_by_node: HashMap<(usize, DeviceKind, u8), u64>,
    /// `edge id -> buffers delivered` by [`Engine::deliver_edge`].
    edge_delivered: HashMap<u32, u64>,
    total_done: u64,
    /// Transient-failure count per buffer id (the `attempt` of the next
    /// `TaskRetried` event).
    task_retries: HashMap<u64, u32>,
}

impl<C: Clock, W: WeightProvider> Engine<C, W> {
    /// An engine with no nodes yet.
    pub fn new(cfg: EngineConfig, clock: C, weights: W, rec: Recorder) -> Engine<C, W> {
        Engine {
            cfg,
            clock,
            weights,
            rec,
            nodes: Vec::new(),
            next_req_id: 0,
            tasks_by: HashMap::new(),
            tasks_by_node: HashMap::new(),
            edge_delivered: HashMap::new(),
            total_done: 0,
            task_retries: HashMap::new(),
        }
    }

    /// Add a node (one reader instance + one ready queue); returns its
    /// index.
    pub fn add_node(&mut self) -> usize {
        self.nodes.push(NodeState {
            reader: SharedQueue::new(),
            ready: SharedQueue::new(),
            workers: Vec::new(),
            dispatch_order: Vec::new(),
            scope: None,
        });
        self.nodes.len() - 1
    }

    /// Restrict `node`'s workers to requesting from `readers` only (in the
    /// given round-robin order). Graph runners scope each filter to its
    /// own input queue; without a scope the node keeps the original
    /// all-readers n×m behaviour.
    pub fn set_reader_scope(&mut self, node: usize, readers: Vec<usize>) {
        assert!(!readers.is_empty(), "reader scope cannot be empty");
        assert!(
            readers.iter().all(|&r| r < self.nodes.len()),
            "reader scope references an unknown node"
        );
        self.nodes[node].scope = Some(readers);
    }

    /// Add a worker slot for `device` on `node`; returns its slot index.
    pub fn add_worker(&mut self, node: usize, device: DeviceId) -> usize {
        let w = WorkerState {
            device,
            window: RequestWindow::new(&self.cfg.policy, self.cfg.max_window),
            busy: false,
            rr_cursor: node,
            alive: true,
            draining: false,
            health: 1.0,
            util: UtilizationTracker::new(),
            req_trace: Vec::new(),
            latency_hist: DurationHistogram::new(),
            service_hist: DurationHistogram::new(),
        };
        self.nodes[node].workers.push(w);
        self.nodes[node].workers.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of worker slots across all nodes.
    pub fn worker_count(&self) -> usize {
        self.nodes.iter().map(|n| n.workers.len()).sum()
    }

    /// All worker references, node-major in slot order.
    pub fn worker_refs(&self) -> Vec<WorkerRef> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| {
                ns.workers.iter().enumerate().map(move |(i, w)| WorkerRef {
                    node: n,
                    worker: i,
                    device: w.device,
                })
            })
            .collect()
    }

    /// The device a worker slot schedules for.
    pub fn worker_device(&self, node: usize, worker: usize) -> DeviceId {
        self.nodes[node].workers[worker].device
    }

    /// Set a worker's batch reserve (see
    /// [`RequestWindow::set_batch_reserve`]); drivers call this at worker
    /// creation and whenever the stream controller changes its count.
    pub fn set_batch_reserve(&mut self, node: usize, worker: usize, slots: usize) {
        self.nodes[node].workers[worker]
            .window
            .set_batch_reserve(slots);
    }

    /// The observability sink decisions are recorded to.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// `(device kind, level) -> completed buffers`, accumulated by
    /// [`Engine::task_finished`].
    pub fn tasks_by(&self) -> &HashMap<(DeviceKind, u8), u64> {
        &self.tasks_by
    }

    /// `(node, device kind, level) -> completed buffers` — node = filter
    /// id in graph runs, so this is the per-filter completion view.
    pub fn tasks_by_node(&self) -> &HashMap<(usize, DeviceKind, u8), u64> {
        &self.tasks_by_node
    }

    /// `edge id -> buffers delivered` over dataflow edges via
    /// [`Engine::deliver_edge`]. Together with per-filter completions this
    /// is the per-edge side of the conservation invariant (delivered =
    /// consumed + still queued).
    pub fn edge_delivered(&self) -> &HashMap<u32, u64> {
        &self.edge_delivered
    }

    /// Total completed buffers.
    pub fn total_done(&self) -> u64 {
        self.total_done
    }

    /// Borrow every worker's measurement series, node-major in slot order.
    pub fn worker_stats(&self) -> impl Iterator<Item = WorkerStats<'_>> {
        self.nodes.iter().flat_map(|ns| {
            ns.workers.iter().map(|w| WorkerStats {
                device: w.device,
                util: &w.util,
                req_trace: &w.req_trace,
                latency_hist: &w.latency_hist,
                service_hist: &w.service_hist,
            })
        })
    }

    fn worker_ref(&self, node: usize, worker: usize) -> WorkerRef {
        WorkerRef {
            node,
            worker,
            device: self.nodes[node].workers[worker].device,
        }
    }

    /// Seed a reader with a not-yet-requested buffer. Seeds join the
    /// low-priority FIFO band so recirculated work keeps precedence.
    pub fn seed_reader(&mut self, reader: usize, buffer: DataBuffer) {
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 1);
    }

    /// A recirculated buffer materialized at `reader`: it takes FIFO
    /// precedence over unread seeds (the demand-driven Start→Reader loop
    /// keeps in-flight work ahead of not-yet-started work) and wakes every
    /// starved worker.
    pub fn recirculate<D: Transport>(&mut self, reader: usize, buffer: DataBuffer, d: &mut D) {
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 0);
        self.wake_starved(d);
    }

    /// Seed a reader *mid-run* (open-loop admission): the buffer joins the
    /// low-priority seed band exactly like [`Engine::seed_reader`], then
    /// every starved worker is woken — a seed arriving after workers have
    /// drained the reader would otherwise never be requested.
    pub fn seed_live<D: Transport>(&mut self, reader: usize, buffer: DataBuffer, d: &mut D) {
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 1);
        self.wake_starved(d);
    }

    /// Deliver a buffer routed over dataflow `edge` into `reader`'s input
    /// queue (reader = destination filter in graph runs). The buffer is
    /// already in flight through the graph, so it takes recirculation
    /// precedence over unread seeds; starved workers are woken. Emits the
    /// `edge_enqueued` trace event at the destination filter and counts
    /// the delivery toward the per-edge conservation invariant.
    pub fn deliver_edge<D: Transport>(
        &mut self,
        edge: u32,
        reader: usize,
        buffer: DataBuffer,
        d: &mut D,
    ) {
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::node_scope(reader),
            EventKind::EdgeEnqueued {
                edge,
                buffer: buffer.id.0,
                level: buffer.level,
            },
        );
        self.rec.counter_add("edge_deliveries", &[], 1);
        *self.edge_delivered.entry(edge).or_insert(0) += 1;
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 0);
        self.wake_starved(d);
    }

    /// Buffers currently queued at a reader.
    pub fn reader_len(&self, reader: usize) -> usize {
        self.nodes[reader].reader.len()
    }

    /// Answer a data request arriving at `reader` from a device of
    /// `proctype`: DBSA sorted selection when the policy selects at the
    /// sender, FIFO otherwise. `None` means the reader has drained.
    pub fn answer_request(&mut self, reader: usize, proctype: DeviceKind) -> Option<DataBuffer> {
        let sender_sorted = self.cfg.policy.kind.sender_selects();
        let buffer = select::pop_for(&mut self.nodes[reader].reader, sender_sorted, proctype)
            .map(|(b, _)| b);
        if sender_sorted {
            if let Some(b) = &buffer {
                self.rec.record(
                    self.clock.now().as_nanos(),
                    DeviceRef::node_scope(reader),
                    EventKind::DbsaSelect {
                        buffer: b.id.0,
                        proctype,
                    },
                );
            }
        }
        buffer
    }

    /// A (possibly empty) reply to request `req_id` reached `worker`.
    /// Settles the round-trip latency, queues the buffer on the node's
    /// ready queue (or releases the window slot on an empty reply), and
    /// re-pumps/dispatches. Unknown `req_id`s (e.g. `u64::MAX`) settle
    /// nothing — drivers use them as pure kicks to start the requesters.
    pub fn data_arrived<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        req_id: u64,
        buffer: Option<DataBuffer>,
        d: &mut D,
    ) {
        let now = self.clock.now();
        let lat = self.nodes[node].workers[worker]
            .window
            .settle_latency(req_id, now);
        if let Some(lat) = lat {
            let kind = {
                let w = &mut self.nodes[node].workers[worker];
                w.latency_hist.record(lat);
                w.device.kind
            };
            self.rec
                .histogram_record("request_latency", &[("device", kind_label(kind))], lat);
        }
        match buffer {
            Some(buffer) => {
                if !self.nodes[node]
                    .workers
                    .iter()
                    .any(|w| w.alive && !w.draining)
                {
                    // The reply outlived every assignable worker on the
                    // node (all dead or draining): no slot will ever
                    // consume the ready queue, so settle the requester's
                    // window slot and hand the buffer back to the node's
                    // reader where surviving demand can reach it.
                    self.nodes[node].workers[worker].window.release_slot();
                    self.reassign_to_reader(node, buffer, d);
                    self.maybe_release_drained(node, worker);
                    return;
                }
                self.rec.record(
                    now.as_nanos(),
                    DeviceRef::node_scope(node),
                    EventKind::Enqueue {
                        buffer: buffer.id.0,
                        level: buffer.level,
                    },
                );
                let w = self.decided_weights(node, &buffer);
                self.nodes[node]
                    .ready
                    .insert(buffer, w, Some(worker as u64));
                self.dispatch(node, d);
            }
            None => {
                // Empty reply: the reader drained since the request was
                // issued. Release the window slot and retry elsewhere.
                self.nodes[node].workers[worker].window.release_slot();
                self.pump_requests(node, worker, d);
                self.maybe_release_drained(node, worker);
            }
        }
    }

    /// Ready-queue weights for `buffer` on `node`: the provider's relative
    /// performance scaled per device kind by the best health among the
    /// node's workers of that kind. Kinds with no worker on the node keep
    /// the raw weight; healthy workers multiply by exactly 1.0, so with
    /// recovery off or no degradation the weights are bit-identical to the
    /// unscaled ones (the chaos parity tests rely on this).
    fn effective_weights(&self, node: usize, buffer: &DataBuffer) -> [f64; 2] {
        let w = select::weights_for(&self.weights, buffer);
        self.health_scaled(node, w)
    }

    /// Apply the recovery health scaling of [`Engine::effective_weights`]
    /// to an already-computed weight pair.
    fn health_scaled(&self, node: usize, mut w: [f64; 2]) -> [f64; 2] {
        if !self.cfg.recovery.enabled {
            return w;
        }
        for (slot, kind) in [(0usize, DeviceKind::Cpu), (1, DeviceKind::Gpu)] {
            let mut best: Option<f64> = None;
            for ws in &self.nodes[node].workers {
                if ws.device.kind == kind {
                    let h = if ws.alive { ws.health } else { 0.0 };
                    best = Some(best.map_or(h, |b: f64| b.max(h)));
                }
            }
            if let Some(h) = best {
                w[slot] *= h;
            }
        }
        w
    }

    /// Ready-queue weights routed through the learner when a learned
    /// policy is active: builds a [`DecisionCtx`] from the node's current
    /// queue depth and busy-worker count, asks the provider to decide,
    /// records the `policy_decision` event, and health-scales the decided
    /// weights exactly as [`Engine::effective_weights`] would. Classic
    /// policies (and providers that return `None`) fall through to the
    /// static path untouched, so their traces and weights stay
    /// bit-identical to a build without learned policies.
    fn decided_weights(&self, node: usize, buffer: &DataBuffer) -> [f64; 2] {
        if !self.cfg.policy.kind.learned() {
            return self.effective_weights(node, buffer);
        }
        let ctx = DecisionCtx {
            node,
            queue_depth: self.nodes[node].ready.len() as u64,
            inflight: self.nodes[node]
                .workers
                .iter()
                .filter(|w| w.alive && w.busy)
                .count() as u64,
        };
        match self.weights.decide(buffer, &ctx) {
            Some(dec) => {
                self.rec.record(
                    self.clock.now().as_nanos(),
                    DeviceRef::node_scope(node),
                    EventKind::PolicyDecision {
                        buffer: buffer.id.0,
                        arm: dec.arm,
                        explore: dec.explore as u8,
                        cpu_ppm: (dec.weights[0] * 1e6) as u64,
                        gpu_ppm: (dec.weights[1] * 1e6) as u64,
                    },
                );
                self.health_scaled(node, dec.weights)
            }
            None => self.effective_weights(node, buffer),
        }
    }

    /// Re-home a buffer whose owning slot (or whole node) died: back into
    /// `node`'s reader at recirculation priority, where any surviving
    /// worker's demand can fetch it.
    fn reassign_to_reader<D: Transport>(&mut self, node: usize, buffer: DataBuffer, d: &mut D) {
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::node_scope(node),
            EventKind::TaskReassigned {
                buffer: buffer.id.0,
                level: buffer.level,
            },
        );
        self.rec.counter_add("tasks_reassigned", &[], 1);
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[node].reader.insert_banded(buffer, w, None, 0);
        self.wake_starved(d);
    }

    /// A buffer completed on `worker` after `proc_time` of device
    /// occupancy: records the finish and the completion counters. The
    /// driver decides what the completion *means* (final result,
    /// recalculation loop-back) and separately frees the slot via
    /// [`Engine::worker_idle`].
    pub fn task_finished(
        &mut self,
        node: usize,
        worker: usize,
        buffer: &DataBuffer,
        proc_time: SimDuration,
    ) {
        let w = &self.nodes[node].workers[worker];
        let kind = w.device.kind;
        let device = w.device;
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::device(device),
            EventKind::Finish {
                buffer: buffer.id.0,
                level: buffer.level,
                proc_ns: proc_time.as_nanos(),
            },
        );
        if let Some(up) = self
            .weights
            .observe(buffer, node, worker, kind, proc_time.as_secs_f64())
        {
            self.rec.record(
                self.clock.now().as_nanos(),
                DeviceRef::device(device),
                EventKind::ProfileUpdated {
                    buffer: buffer.id.0,
                    key: up.key,
                    count: up.count,
                    mean_ns: up.mean_ns,
                },
            );
        }
        self.rec
            .counter_add("tasks_finished", &[("device", kind_label(kind))], 1);
        *self.tasks_by.entry((kind, buffer.level)).or_insert(0) += 1;
        *self
            .tasks_by_node
            .entry((node, kind, buffer.level))
            .or_insert(0) += 1;
        self.total_done += 1;
        if self.cfg.recovery.enabled {
            let w = &mut self.nodes[node].workers[worker];
            if w.alive && w.health < 1.0 {
                w.health = (w.health + self.cfg.recovery.health_recovery).min(1.0);
            }
        }
    }

    /// A transient execution failure on `worker`: the device time was
    /// spent but the result is unusable. Decays the worker's health and
    /// re-enqueues the buffer on the node's ready queue — a task is never
    /// abandoned, so completion accounting stays exactly-once. The driver
    /// still frees the slot via [`Engine::worker_idle`] as usual.
    pub fn task_failed<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        buffer: DataBuffer,
        d: &mut D,
    ) {
        let attempt = {
            let a = self.task_retries.entry(buffer.id.0).or_insert(0);
            *a += 1;
            *a
        };
        let kind = self.nodes[node].workers[worker].device.kind;
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::device(self.nodes[node].workers[worker].device),
            EventKind::TaskRetried {
                buffer: buffer.id.0,
                level: buffer.level,
                attempt,
            },
        );
        self.rec
            .counter_add("task_retries", &[("device", kind_label(kind))], 1);
        {
            let w = &mut self.nodes[node].workers[worker];
            w.health = (w.health * self.cfg.recovery.health_decay).max(f64::MIN_POSITIVE);
        }
        if self.nodes[node]
            .workers
            .iter()
            .any(|w| w.alive && !w.draining)
        {
            let w = self.decided_weights(node, &buffer);
            self.nodes[node].ready.insert(buffer, w, None);
            self.dispatch(node, d);
        } else {
            self.reassign_to_reader(node, buffer, d);
        }
    }

    /// Permanent death of `worker`. Marks the slot dead (it never pumps or
    /// dispatches again) and re-homes `inflight` — the buffers the driver
    /// had in execution on the slot — plus, when the node has no surviving
    /// worker, everything stranded on the node's ready queue, back to
    /// where live demand can reach them.
    pub fn worker_died<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        inflight: Vec<DataBuffer>,
        d: &mut D,
    ) {
        let now = self.clock.now();
        let dev = {
            let w = &mut self.nodes[node].workers[worker];
            if !w.alive {
                return;
            }
            w.alive = false;
            w.health = 0.0;
            w.busy = true; // never dispatchable again
            w.util.set_idle(now);
            w.device
        };
        self.rec.record(
            now.as_nanos(),
            DeviceRef::device(dev),
            EventKind::WorkerDied {
                inflight: inflight.len() as u32,
            },
        );
        self.rec
            .counter_add("workers_died", &[("device", kind_label(dev.kind))], 1);
        let node_alive = self.nodes[node]
            .workers
            .iter()
            .any(|w| w.alive && !w.draining);
        let mut stranded = inflight;
        if !node_alive {
            // No survivor on the node: its ready queue is unreachable too.
            while let Some((b, _)) = self.nodes[node].ready.pop_fifo() {
                stranded.push(b);
            }
        }
        for buffer in stranded {
            if node_alive {
                self.rec.record(
                    now.as_nanos(),
                    DeviceRef::node_scope(node),
                    EventKind::TaskReassigned {
                        buffer: buffer.id.0,
                        level: buffer.level,
                    },
                );
                self.rec.counter_add("tasks_reassigned", &[], 1);
                let w = self.effective_weights(node, &buffer);
                self.nodes[node].ready.insert(buffer, w, None);
            } else {
                self.reassign_to_reader(node, buffer, d);
            }
        }
        if node_alive {
            self.dispatch(node, d);
        }
    }

    /// One-line liveness diagnostic for a node — queue depths plus every
    /// slot's alive/draining/busy/outstanding/starved state. Drivers embed
    /// it in deadline errors so a stalled run reports *where* the missing
    /// work sits instead of just that it never finished.
    pub fn debug_node_state(&self, node: usize) -> String {
        let n = &self.nodes[node];
        let workers: Vec<String> = n
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "w{i}[alive={} drain={} busy={} out={} starved={} target={}]",
                    w.alive,
                    w.draining,
                    w.busy,
                    w.window.outstanding(),
                    w.window.is_starved(),
                    w.window.target()
                )
            })
            .collect();
        format!(
            "reader={} ready={} {}",
            n.reader.len(),
            n.ready.len(),
            workers.join(" ")
        )
    }

    /// Is the worker slot still alive?
    pub fn worker_alive(&self, node: usize, worker: usize) -> bool {
        self.nodes[node].workers[worker].alive
    }

    /// Is the worker slot draining (alive but no longer assignable)?
    pub fn worker_draining(&self, node: usize, worker: usize) -> bool {
        self.nodes[node].workers[worker].draining
    }

    /// Worker slots that can still be assigned work: alive and not
    /// draining. The autoscaler sizes the pool against this count.
    pub fn active_worker_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.workers.iter())
            .filter(|w| w.alive && !w.draining)
            .count()
    }

    /// The worker slot's current health estimate (1.0 = pristine, 0.0 =
    /// dead).
    pub fn worker_health(&self, node: usize, worker: usize) -> f64 {
        self.nodes[node].workers[worker].health
    }

    /// A worker slot joined a live run (elastic membership): added exactly
    /// like a static [`Engine::add_worker`], stamped with the
    /// `worker_joined` trace event, then pumped for demand immediately.
    ///
    /// Warm-up: the joiner starts with a freshly initialized request
    /// window — target 1 under DQAA — so a cold worker ramps its demand up
    /// from one request as real latencies arrive instead of stampeding the
    /// readers; DDWRR/DBSA weights come from the run's shared
    /// [`WeightProvider`], so a joiner of an already-profiled device class
    /// inherits the estimator's bootstrap profiles at full fidelity.
    pub fn join_worker<D: Transport + Executor>(
        &mut self,
        node: usize,
        device: DeviceId,
        d: &mut D,
    ) -> usize {
        let worker = self.add_worker(node, device);
        let target = self.nodes[node].workers[worker].window.target();
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::device(device),
            EventKind::WorkerJoined {
                window: target as u32,
            },
        );
        self.rec
            .counter_add("workers_joined", &[("device", kind_label(device.kind))], 1);
        self.pump_requests(node, worker, d);
        self.dispatch(node, d);
        worker
    }

    /// Begin a graceful drain of `worker` (Active → Draining): the slot
    /// stops pumping demand and is never dispatched again, but its
    /// in-flight requests and running batch finish normally (bounded by
    /// the recovery timeout path when enabled). Once the last outstanding
    /// item settles the slot is released with a `worker_left` event; an
    /// already-idle slot with no outstanding requests releases
    /// immediately. Draining a dead or already-draining slot is a no-op.
    pub fn drain_worker(&mut self, node: usize, worker: usize) {
        let (dev, outstanding) = {
            let w = &mut self.nodes[node].workers[worker];
            if !w.alive || w.draining {
                return;
            }
            w.draining = true;
            (w.device, w.window.outstanding())
        };
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::device(dev),
            EventKind::WorkerDraining {
                outstanding: outstanding as u32,
            },
        );
        self.rec
            .counter_add("workers_draining", &[("device", kind_label(dev.kind))], 1);
        self.maybe_release_drained(node, worker);
    }

    /// The Draining → Gone transition: retire a draining slot once it is
    /// idle with no outstanding requests. Called after every event that
    /// can settle the slot's last in-flight item.
    fn maybe_release_drained(&mut self, node: usize, worker: usize) {
        let now = self.clock.now();
        let dev = {
            let w = &mut self.nodes[node].workers[worker];
            if !w.draining || !w.alive || w.busy || w.window.outstanding() > 0 {
                return;
            }
            w.alive = false;
            w.busy = true; // never dispatchable again
            w.health = 0.0;
            w.util.set_idle(now);
            w.device
        };
        self.rec.record(
            now.as_nanos(),
            DeviceRef::device(dev),
            EventKind::WorkerLeft,
        );
        self.rec
            .counter_add("workers_left", &[("device", kind_label(dev.kind))], 1);
    }

    /// The driver's timer fired for `req_id` on `worker`. If the reply
    /// already settled this is a no-op (drivers never cancel timers). An
    /// unsettled request is retried under a fresh id with exponential
    /// backoff, up to the configured retry cap; past the cap the window
    /// slot is released so the worker pumps fresh demand instead — the
    /// requested *data* is never lost, because a reader hands a buffer out
    /// only when the reply is actually delivered or conserved by the
    /// driver's drop path.
    pub fn request_timed_out<D: Transport>(
        &mut self,
        node: usize,
        worker: usize,
        req_id: u64,
        d: &mut D,
    ) {
        if !self.cfg.recovery.enabled || !self.nodes[node].workers[worker].alive {
            return;
        }
        let Some(sent) = self.nodes[node].workers[worker].window.take_sent(req_id) else {
            return; // reply won the race
        };
        if self.nodes[node].workers[worker].draining {
            // A draining slot never re-pumps: give the window slot back so
            // the drain can complete. The requested data is not lost — a
            // reader only hands a buffer out when the reply is delivered.
            self.nodes[node].workers[worker].window.release_slot();
            self.maybe_release_drained(node, worker);
            return;
        }
        let kind = self.nodes[node].workers[worker].device.kind;
        self.rec
            .counter_add("request_timeouts", &[("device", kind_label(kind))], 1);
        let recovery = self.cfg.recovery;
        if sent.attempt >= recovery.max_retries {
            // Retry chain exhausted: give the slot back and re-pump fresh
            // demand (possibly toward a different reader).
            self.rec.counter_add("request_retries_exhausted", &[], 1);
            self.nodes[node].workers[worker].window.release_slot();
            self.pump_requests(node, worker, d);
            return;
        }
        let attempt = sent.attempt + 1;
        let Some(reader) = self.choose_reader(node, worker) else {
            // Nothing readable anywhere right now: stop retrying, release
            // the slot and wait starved for a recirculation to wake us.
            self.nodes[node].workers[worker].window.release_slot();
            self.nodes[node].workers[worker].window.set_starved();
            return;
        };
        let new_id = self.next_req_id;
        self.next_req_id += 1;
        let now = self.clock.now();
        let wref = self.worker_ref(node, worker);
        {
            let cursor = self.cursor_after(node, reader);
            let w = &mut self.nodes[node].workers[worker];
            w.rr_cursor = cursor;
            w.window.note_resent(new_id, now, attempt);
        }
        self.rec
            .counter_add("request_retries", &[("device", kind_label(kind))], 1);
        let span = backoff_timeout(recovery.request_timeout, attempt, recovery.backoff_cap);
        d.schedule_timeout(wref, new_id, now + span);
        d.send_request(wref, reader, new_id);
    }

    /// `worker` became free after processing the given per-buffer
    /// durations: DQAA adaptation, window trace, re-request, re-dispatch.
    pub fn worker_idle<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        processed: &[SimDuration],
        d: &mut D,
    ) {
        if !self.nodes[node].workers[worker].alive {
            return; // a completion racing a death: the slot stays retired
        }
        let now = self.clock.now();
        let (dev, target) = {
            let w = &mut self.nodes[node].workers[worker];
            w.busy = false;
            w.util.set_idle(now);
            for &dt in processed {
                w.window.observe_processing(dt);
                w.service_hist.record(dt);
            }
            let target = w.window.target();
            w.req_trace.push((now, target));
            (DeviceRef::device(w.device), target)
        };
        self.rec.record(
            now.as_nanos(),
            dev,
            EventKind::DqaaWindow {
                target: target as u32,
            },
        );
        if self.rec.is_enabled() {
            let label = kind_label(dev.kind.expect("worker slots are device-scoped"));
            for &dt in processed {
                self.rec
                    .histogram_record("service_time", &[("device", label)], dt);
            }
        }
        self.pump_requests(node, worker, d);
        self.dispatch(node, d);
        self.maybe_release_drained(node, worker);
    }

    /// Hand ready buffers to every idle worker of `node`, GPUs first, each
    /// batched up to the executor's limit. Emits `Dispatch` + `Start` per
    /// buffer and marks the slot busy before launching. Draining slots are
    /// never assigned.
    ///
    /// The GPU-first visit order is a pure function of the slot kinds, so
    /// it is cached on the node and rebuilt only when a worker joins —
    /// dispatch runs on every completion, and recomputing the order was an
    /// O(workers) sort + two allocations per event at high fan-in.
    pub fn dispatch<D: Transport + Executor>(&mut self, node: usize, d: &mut D) {
        if self.nodes[node].ready.is_empty() {
            return;
        }
        if self.nodes[node].dispatch_order.len() != self.nodes[node].workers.len() {
            let kinds: Vec<DeviceKind> = self.nodes[node]
                .workers
                .iter()
                .map(|w| w.device.kind)
                .collect();
            self.nodes[node].dispatch_order = select::dispatch_order(&kinds);
        }
        let order = std::mem::take(&mut self.nodes[node].dispatch_order);
        for &wi in &order {
            if self.nodes[node].workers[wi].busy || self.nodes[node].workers[wi].draining {
                continue;
            }
            if self.nodes[node].ready.is_empty() {
                break;
            }
            let wref = self.worker_ref(node, wi);
            let limit = d.batch_limit(wref).max(1);
            let mut batch = Vec::with_capacity(limit);
            while batch.len() < limit {
                match self.take_ready(node, wref.device.kind, d) {
                    Some(b) => batch.push(b),
                    None => break,
                }
            }
            if batch.is_empty() {
                continue;
            }
            let now = self.clock.now();
            let dev = DeviceRef::device(wref.device);
            for b in &batch {
                self.rec.record(
                    now.as_nanos(),
                    dev,
                    EventKind::Dispatch {
                        buffer: b.id.0,
                        level: b.level,
                    },
                );
                self.rec.record(
                    now.as_nanos(),
                    dev,
                    EventKind::Start {
                        buffer: b.id.0,
                        level: b.level,
                    },
                );
            }
            let w = &mut self.nodes[node].workers[wi];
            w.busy = true;
            w.util.set_busy(now);
            d.launch(wref, batch);
        }
        // A reentrant dispatch (an executor completing inline) rebuilds
        // its own copy from the kinds; last writer wins with identical
        // content either way.
        self.nodes[node].dispatch_order = order;
    }

    /// Pop one ready buffer for a device of `kind` per the receiver-side
    /// policy; settles the window slot of the worker whose request fetched
    /// it and immediately re-pumps that worker.
    fn take_ready<D: Transport>(
        &mut self,
        node: usize,
        kind: DeviceKind,
        d: &mut D,
    ) -> Option<DataBuffer> {
        let sorted = self.cfg.policy.kind.receiver_sorted();
        let (buffer, tag) = select::pop_for(&mut self.nodes[node].ready, sorted, kind)?;
        if let Some(owner) = tag {
            let owner = owner as usize;
            if owner < self.nodes[node].workers.len() {
                self.nodes[node].workers[owner].window.release_slot();
                self.pump_requests(node, owner, d);
                self.maybe_release_drained(node, owner);
            }
        }
        Some(buffer)
    }

    /// The first reader with data, round-robin from `worker`'s cursor.
    /// A scoped node rotates over its scope list; an unscoped node keeps
    /// the original all-nodes arithmetic bit for bit.
    fn choose_reader(&self, node: usize, worker: usize) -> Option<usize> {
        let start = self.nodes[node].workers[worker].rr_cursor;
        match &self.nodes[node].scope {
            Some(scope) => (0..scope.len())
                .map(|off| scope[(start + off) % scope.len()])
                .find(|&r| !self.nodes[r].reader.is_empty()),
            None => {
                let n_nodes = self.nodes.len();
                (0..n_nodes)
                    .map(|off| (start + off) % n_nodes)
                    .find(|&r| !self.nodes[r].reader.is_empty())
            }
        }
    }

    /// The cursor value that continues the round-robin *after* a request
    /// went to `reader`: the next scope position for scoped nodes, the
    /// next node id otherwise (pre-graph arithmetic).
    fn cursor_after(&self, node: usize, reader: usize) -> usize {
        match &self.nodes[node].scope {
            Some(scope) => {
                let pos = scope
                    .iter()
                    .position(|&r| r == reader)
                    .expect("chosen reader is in scope");
                (pos + 1) % scope.len()
            }
            None => (reader + 1) % self.nodes.len(),
        }
    }

    /// ThreadRequester: keep `worker`'s outstanding requests at its target
    /// window by sending requests to readers that currently have data,
    /// round-robin from the worker's cursor. Dead slots never pump; a
    /// degraded slot pumps toward its health-throttled target.
    fn pump_requests<D: Transport>(&mut self, node: usize, worker: usize, d: &mut D) {
        let recovery = self.cfg.recovery;
        loop {
            let w = &self.nodes[node].workers[worker];
            if !w.alive || w.draining {
                return;
            }
            if w.window.outstanding() >= w.effective_target(&recovery).min(self.cfg.max_window) {
                return;
            }
            let Some(reader) = self.choose_reader(node, worker) else {
                // Nothing anywhere: wait for a recirculation to materialize.
                self.nodes[node].workers[worker].window.set_starved();
                return;
            };
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            let now = self.clock.now();
            let wref = self.worker_ref(node, worker);
            {
                let cursor = self.cursor_after(node, reader);
                let w = &mut self.nodes[node].workers[worker];
                w.rr_cursor = cursor;
                w.window.note_sent(req_id, now);
            }
            if recovery.enabled {
                d.schedule_timeout(wref, req_id, now + recovery.request_timeout);
            }
            d.send_request(wref, reader, req_id);
        }
    }

    /// Re-pump every starved live worker (a reader just became non-empty).
    fn wake_starved<D: Transport>(&mut self, d: &mut D) {
        let idx: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| {
                ns.workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.window.is_starved() && w.alive && !w.draining)
                    .map(move |(i, _)| (n, i))
            })
            .collect();
        for (n, w) in idx {
            self.pump_requests(n, w, d);
        }
    }
}
