//! The single point where a policy's ordering decisions are applied.
//!
//! Table 5 of the paper distinguishes the three policies by *where* queues
//! are consumed sorted-by-speedup versus FIFO. Every such decision in the
//! codebase funnels through [`pop_for`]: the engine's receiver-side ready
//! queues, the reader/DBSA sender side ([`crate::dbsa::SendQueue`]), and
//! the threaded runtime's stage queues (via [`ReadyLane`]). Backends never
//! re-implement the ordering rule.

use std::collections::{BinaryHeap, VecDeque};

use anthill_hetsim::DeviceKind;

use crate::buffer::DataBuffer;
use crate::policy::PolicyKind;
use crate::queue::{OrdWeight, SharedQueue};
use crate::weights::WeightProvider;

/// Pop the next buffer from `queue` for a device of `kind`: the
/// highest-weighted buffer for that device when `sorted`, the oldest
/// buffer otherwise. Returns the buffer and its requesting-worker tag.
pub fn pop_for(
    queue: &mut SharedQueue,
    sorted: bool,
    kind: DeviceKind,
) -> Option<(DataBuffer, Option<u64>)> {
    if sorted {
        queue.pop_best(kind)
    } else {
        queue.pop_fifo()
    }
}

/// Per-device weights of a buffer, in `DeviceKind::ALL` order — the shape
/// [`SharedQueue`] insertion expects.
pub fn weights_for<W: WeightProvider + ?Sized>(weights: &W, buf: &DataBuffer) -> [f64; 2] {
    [
        weights.weight(buf, DeviceKind::Cpu),
        weights.weight(buf, DeviceKind::Gpu),
    ]
}

/// Dispatch visit order over worker slots of the given device kinds: GPUs
/// first (they drain the queue fastest), preserving slot order within a
/// class. Stable, so equal-kind workers keep their configuration order.
pub fn dispatch_order(kinds: &[DeviceKind]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..kinds.len()).collect();
    idx.sort_by_key(|&i| match kinds[i] {
        DeviceKind::Gpu => 0,
        DeviceKind::Cpu => 1,
    });
    idx
}

/// A policy-ordered ready queue: the receiver-side ordering rule of a
/// [`PolicyKind`] over one of three storage layouts. Backends that own
/// their queueing machinery (the threaded runtime's per-stage queues) use
/// this instead of re-deciding the pop order locally.
///
/// [`ReadyLane::new`] always uses the full [`SharedQueue`] (FIFO index plus
/// one sorted view per device kind) — the layout the engine's shared pools
/// need, and the pre-overhaul behaviour the `HotPath::Coarse` baseline
/// reinstates. [`ReadyLane::tuned`] picks the cheapest layout that yields
/// the *same pop order* for the consumers the lane will actually serve:
/// a plain `VecDeque` when the policy pops FIFO (DDFCFS never reads the
/// sorted views it would otherwise pay ~4 map updates per push/pop to
/// maintain), or a single sorted `BTreeMap` when every consumer is the
/// same device kind (the other kind's view could never be popped).
#[derive(Debug)]
enum LaneStore {
    /// Full shared pool with every view — pre-overhaul layout.
    Shared(SharedQueue),
    /// FIFO-only lane: arrival order is the pop order.
    Fifo(VecDeque<(DataBuffer, Option<u64>)>),
    /// One max-heap for a homogeneous stage; the heap key mirrors
    /// [`SharedQueue`]'s sorted-view key `(weight, u64::MAX - seq)` and
    /// keys are unique (seq is), so the pop-max order — including
    /// oldest-wins tie-breaks — is identical.
    SingleKind {
        kind_index: usize,
        heap: BinaryHeap<SingleKindItem>,
        next_seq: u64,
    },
}

/// Heap entry of a single-kind lane: ordered by `(weight, u64::MAX - seq)`
/// only — the buffer payload never participates in comparisons.
#[derive(Debug)]
struct SingleKindItem {
    weight: OrdWeight,
    rev_seq: u64,
    buffer: DataBuffer,
    tag: Option<u64>,
}

impl PartialEq for SingleKindItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for SingleKindItem {}
impl PartialOrd for SingleKindItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SingleKindItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.weight, self.rev_seq).cmp(&(other.weight, other.rev_seq))
    }
}

/// See [`LaneStore`] for the layout choices.
#[derive(Debug)]
pub struct ReadyLane {
    store: LaneStore,
    sorted: bool,
}

impl Default for ReadyLane {
    fn default() -> ReadyLane {
        ReadyLane {
            store: LaneStore::Shared(SharedQueue::new()),
            sorted: false,
        }
    }
}

impl ReadyLane {
    /// An empty lane consumed per `policy` (DDFCFS pops FIFO, DDWRR/ODDS
    /// pop best-per-device), backed by a full [`SharedQueue`].
    pub fn new(policy: PolicyKind) -> ReadyLane {
        ReadyLane {
            store: LaneStore::Shared(SharedQueue::new()),
            sorted: policy.receiver_sorted(),
        }
    }

    /// An empty lane consumed per `policy` by workers of the given device
    /// kinds, backed by the cheapest layout that preserves the policy's
    /// pop order for those consumers.
    pub fn tuned(policy: PolicyKind, kinds: &[DeviceKind]) -> ReadyLane {
        let sorted = policy.receiver_sorted();
        let store = if !sorted {
            LaneStore::Fifo(VecDeque::new())
        } else if let Some((&first, rest)) = kinds.split_first() {
            if rest.iter().all(|&k| k == first) {
                LaneStore::SingleKind {
                    kind_index: SharedQueue::kind_index(first),
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                }
            } else {
                LaneStore::Shared(SharedQueue::new())
            }
        } else {
            LaneStore::Shared(SharedQueue::new())
        };
        ReadyLane { store, sorted }
    }

    /// True if `push` consults the weight vector: FIFO-only lanes ignore
    /// it, so callers can skip computing weights entirely.
    pub fn needs_weights(&self) -> bool {
        !matches!(self.store, LaneStore::Fifo(_))
    }

    /// Queue a buffer with precomputed per-device weights.
    pub fn push(&mut self, buffer: DataBuffer, weights: [f64; 2], tag: Option<u64>) {
        match &mut self.store {
            LaneStore::Shared(q) => q.insert(buffer, weights, tag),
            LaneStore::Fifo(q) => q.push_back((buffer, tag)),
            LaneStore::SingleKind {
                kind_index,
                heap,
                next_seq,
            } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(SingleKindItem {
                    weight: OrdWeight(weights[*kind_index]),
                    rev_seq: u64::MAX - seq,
                    buffer,
                    tag,
                });
            }
        }
    }

    /// Pop the next buffer for a device of `kind` per the lane's policy.
    pub fn pop(&mut self, kind: DeviceKind) -> Option<(DataBuffer, Option<u64>)> {
        match &mut self.store {
            LaneStore::Shared(q) => pop_for(q, self.sorted, kind),
            LaneStore::Fifo(q) => q.pop_front(),
            LaneStore::SingleKind {
                kind_index, heap, ..
            } => {
                debug_assert_eq!(
                    *kind_index,
                    SharedQueue::kind_index(kind),
                    "single-kind lane popped by a different device kind"
                );
                heap.pop().map(|it| (it.buffer, it.tag))
            }
        }
    }

    /// Number of queued buffers.
    pub fn len(&self) -> usize {
        match &self.store {
            LaneStore::Shared(q) => q.len(),
            LaneStore::Fifo(q) => q.len(),
            LaneStore::SingleKind { heap, .. } => heap.len(),
        }
    }

    /// True if no buffers are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::TaskShape;
    use anthill_simkit::SimDuration;

    fn buf(id: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_millis(1),
                gpu_kernel: SimDuration::from_millis(1),
                bytes_in: 64,
                bytes_out: 64,
            },
            level: 0,
            task: id,
        }
    }

    #[test]
    fn pop_for_honours_the_sorted_flag() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 1.0], None);
        q.insert(buf(2), [9.0, 9.0], None);
        assert_eq!(
            pop_for(&mut q, false, DeviceKind::Gpu).unwrap().0.id.0,
            1,
            "FIFO ignores weights"
        );
        assert_eq!(
            pop_for(&mut q, true, DeviceKind::Gpu).unwrap().0.id.0,
            2,
            "sorted takes the best"
        );
    }

    #[test]
    fn dispatch_order_is_gpu_first_and_stable() {
        use DeviceKind::{Cpu, Gpu};
        assert_eq!(dispatch_order(&[Cpu, Gpu, Cpu, Gpu]), vec![1, 3, 0, 2]);
        assert_eq!(dispatch_order(&[Cpu, Cpu]), vec![0, 1]);
        assert_eq!(dispatch_order(&[]), Vec::<usize>::new());
    }

    /// Every tuned layout must pop in exactly the order the full
    /// [`SharedQueue`] layout would — layouts are a cost choice, never a
    /// semantics choice.
    #[test]
    fn tuned_lanes_match_full_lane_pop_order() {
        let weights = |id: u64| [id as f64 % 3.0, (10 - id) as f64 % 4.0];
        for (policy, kinds) in [
            (PolicyKind::DdFcfs, vec![DeviceKind::Cpu; 4]),
            (PolicyKind::DdWrr, vec![DeviceKind::Cpu; 4]),
            (PolicyKind::DdWrr, vec![DeviceKind::Gpu; 2]),
            (PolicyKind::DdWrr, vec![DeviceKind::Cpu, DeviceKind::Gpu]),
            (PolicyKind::Odds, vec![DeviceKind::Gpu; 3]),
        ] {
            let mut full = ReadyLane::new(policy);
            let mut tuned = ReadyLane::tuned(policy, &kinds);
            for id in 0..9 {
                full.push(buf(id), weights(id), Some(id));
                tuned.push(buf(id), weights(id), Some(id));
            }
            assert_eq!(full.len(), tuned.len());
            let kind = kinds[0];
            for step in 0..9 {
                let a = full.pop(kind).expect("full lane has buffers");
                let b = tuned.pop(kind).expect("tuned lane has buffers");
                assert_eq!(
                    (a.0.id, a.1),
                    (b.0.id, b.1),
                    "pop {step} diverged under {policy:?}"
                );
            }
            assert!(full.is_empty() && tuned.is_empty());
        }
    }

    #[test]
    fn fifo_lane_skips_weight_bookkeeping() {
        let fifo = ReadyLane::tuned(PolicyKind::DdFcfs, &[DeviceKind::Cpu]);
        let sorted = ReadyLane::tuned(PolicyKind::DdWrr, &[DeviceKind::Cpu]);
        assert!(!fifo.needs_weights());
        assert!(sorted.needs_weights());
        assert!(ReadyLane::new(PolicyKind::DdFcfs).needs_weights());
    }

    #[test]
    fn ready_lane_applies_the_policy() {
        let mut fifo = ReadyLane::new(PolicyKind::DdFcfs);
        let mut sorted = ReadyLane::new(PolicyKind::DdWrr);
        for lane in [&mut fifo, &mut sorted] {
            lane.push(buf(1), [1.0, 1.0], None);
            lane.push(buf(2), [5.0, 5.0], None);
        }
        assert_eq!(fifo.pop(DeviceKind::Cpu).unwrap().0.id.0, 1);
        assert_eq!(sorted.pop(DeviceKind::Cpu).unwrap().0.id.0, 2);
        assert_eq!(fifo.len(), 1);
        assert!(!sorted.is_empty());
    }
}
