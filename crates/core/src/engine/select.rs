//! The single point where a policy's ordering decisions are applied.
//!
//! Table 5 of the paper distinguishes the three policies by *where* queues
//! are consumed sorted-by-speedup versus FIFO. Every such decision in the
//! codebase funnels through [`pop_for`]: the engine's receiver-side ready
//! queues, the reader/DBSA sender side ([`crate::dbsa::SendQueue`]), and
//! the threaded runtime's stage queues (via [`ReadyLane`]). Backends never
//! re-implement the ordering rule.

use anthill_hetsim::DeviceKind;

use crate::buffer::DataBuffer;
use crate::policy::PolicyKind;
use crate::queue::SharedQueue;
use crate::weights::WeightProvider;

/// Pop the next buffer from `queue` for a device of `kind`: the
/// highest-weighted buffer for that device when `sorted`, the oldest
/// buffer otherwise. Returns the buffer and its requesting-worker tag.
pub fn pop_for(
    queue: &mut SharedQueue,
    sorted: bool,
    kind: DeviceKind,
) -> Option<(DataBuffer, Option<u64>)> {
    if sorted {
        queue.pop_best(kind)
    } else {
        queue.pop_fifo()
    }
}

/// Per-device weights of a buffer, in `DeviceKind::ALL` order — the shape
/// [`SharedQueue`] insertion expects.
pub fn weights_for<W: WeightProvider + ?Sized>(weights: &W, buf: &DataBuffer) -> [f64; 2] {
    [
        weights.weight(buf, DeviceKind::Cpu),
        weights.weight(buf, DeviceKind::Gpu),
    ]
}

/// Dispatch visit order over worker slots of the given device kinds: GPUs
/// first (they drain the queue fastest), preserving slot order within a
/// class. Stable, so equal-kind workers keep their configuration order.
pub fn dispatch_order(kinds: &[DeviceKind]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..kinds.len()).collect();
    idx.sort_by_key(|&i| match kinds[i] {
        DeviceKind::Gpu => 0,
        DeviceKind::Cpu => 1,
    });
    idx
}

/// A policy-ordered ready queue: a [`SharedQueue`] plus the receiver-side
/// ordering rule of a [`PolicyKind`]. Backends that own their queueing
/// machinery (the threaded runtime's per-stage queues) use this instead of
/// re-deciding the pop order locally.
#[derive(Debug, Default)]
pub struct ReadyLane {
    queue: SharedQueue,
    sorted: bool,
}

impl ReadyLane {
    /// An empty lane consumed per `policy` (DDFCFS pops FIFO, DDWRR/ODDS
    /// pop best-per-device).
    pub fn new(policy: PolicyKind) -> ReadyLane {
        ReadyLane {
            queue: SharedQueue::new(),
            sorted: policy.receiver_sorted(),
        }
    }

    /// Queue a buffer with precomputed per-device weights.
    pub fn push(&mut self, buffer: DataBuffer, weights: [f64; 2], tag: Option<u64>) {
        self.queue.insert(buffer, weights, tag);
    }

    /// Pop the next buffer for a device of `kind` per the lane's policy.
    pub fn pop(&mut self, kind: DeviceKind) -> Option<(DataBuffer, Option<u64>)> {
        pop_for(&mut self.queue, self.sorted, kind)
    }

    /// Number of queued buffers.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no buffers are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::TaskShape;
    use anthill_simkit::SimDuration;

    fn buf(id: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_millis(1),
                gpu_kernel: SimDuration::from_millis(1),
                bytes_in: 64,
                bytes_out: 64,
            },
            level: 0,
            task: id,
        }
    }

    #[test]
    fn pop_for_honours_the_sorted_flag() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 1.0], None);
        q.insert(buf(2), [9.0, 9.0], None);
        assert_eq!(
            pop_for(&mut q, false, DeviceKind::Gpu).unwrap().0.id.0,
            1,
            "FIFO ignores weights"
        );
        assert_eq!(
            pop_for(&mut q, true, DeviceKind::Gpu).unwrap().0.id.0,
            2,
            "sorted takes the best"
        );
    }

    #[test]
    fn dispatch_order_is_gpu_first_and_stable() {
        use DeviceKind::{Cpu, Gpu};
        assert_eq!(dispatch_order(&[Cpu, Gpu, Cpu, Gpu]), vec![1, 3, 0, 2]);
        assert_eq!(dispatch_order(&[Cpu, Cpu]), vec![0, 1]);
        assert_eq!(dispatch_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn ready_lane_applies_the_policy() {
        let mut fifo = ReadyLane::new(PolicyKind::DdFcfs);
        let mut sorted = ReadyLane::new(PolicyKind::DdWrr);
        for lane in [&mut fifo, &mut sorted] {
            lane.push(buf(1), [1.0, 1.0], None);
            lane.push(buf(2), [5.0, 5.0], None);
        }
        assert_eq!(fifo.pop(DeviceKind::Cpu).unwrap().0.id.0, 1);
        assert_eq!(sorted.pop(DeviceKind::Cpu).unwrap().0.id.0, 2);
        assert_eq!(fifo.len(), 1);
        assert!(!sorted.is_empty());
    }
}
