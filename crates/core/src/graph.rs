//! Dataflow graphs of replicated filters connected by labeled streams.
//!
//! Anthill applications are not single filters: they are DAGs of
//! replicated filters wired by *streams* (paper Section 2, Figure 1). This
//! module is the structural layer the runtime schedules over — it owns no
//! policy and no execution, only the topology and the per-edge routing
//! rule that decides where a buffer emitted by filter *i* is delivered.
//!
//! Routing modes mirror Anthill's stream kinds:
//!
//! * [`Routing::RoundRobin`] — the classic load-balancing stream: each
//!   emitted buffer goes to exactly one downstream edge, rotating over the
//!   filter's round-robin out-edges in declaration order.
//! * [`Routing::Labeled`] — a labeled stream: the edge declares a label
//!   and receives exactly the buffers whose `level` matches it (the
//!   labeled-stream hash of the paper, keyed on our integer label space).
//! * [`Routing::Broadcast`] — every emitted buffer is copied onto the
//!   edge, in addition to any labeled/round-robin delivery.
//!
//! Edges marked [`EdgeSpec::feedback`] are excluded from the acyclicity
//! check; they model the Classifier→Start→Reader recirculation cycle of
//! Figure 1 and are used only for explicitly recirculated buffers, so the
//! forward dataflow remains a DAG.

use std::fmt;

/// How an edge receives buffers emitted by its source filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// One delivery per emission, rotating over the source's round-robin
    /// edges in declaration order.
    RoundRobin,
    /// Receives buffers whose `level` equals the edge's label.
    Labeled,
    /// Receives a copy of every emission.
    Broadcast,
}

/// One filter (a replicated processing stage) of a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Human-readable filter name (trace/report labels).
    pub name: String,
}

impl FilterSpec {
    /// A named filter.
    pub fn new(name: &str) -> FilterSpec {
        FilterSpec {
            name: name.to_string(),
        }
    }
}

/// One directed stream between two filters of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Source filter id.
    pub from: usize,
    /// Destination filter id.
    pub to: usize,
    /// Delivery rule for buffers emitted by `from`.
    pub routing: Routing,
    /// Label matched against `DataBuffer::level` (labeled edges only).
    pub label: Option<u8>,
    /// Feedback edges carry explicitly recirculated buffers and are
    /// excluded from the acyclicity check.
    pub feedback: bool,
}

impl EdgeSpec {
    /// A forward round-robin stream.
    pub fn round_robin(from: usize, to: usize) -> EdgeSpec {
        EdgeSpec {
            from,
            to,
            routing: Routing::RoundRobin,
            label: None,
            feedback: false,
        }
    }

    /// A forward labeled stream receiving buffers of level `label`.
    pub fn labeled(from: usize, to: usize, label: u8) -> EdgeSpec {
        EdgeSpec {
            from,
            to,
            routing: Routing::Labeled,
            label: Some(label),
            feedback: false,
        }
    }

    /// A forward broadcast stream.
    pub fn broadcast(from: usize, to: usize) -> EdgeSpec {
        EdgeSpec {
            from,
            to,
            routing: Routing::Broadcast,
            label: None,
            feedback: false,
        }
    }

    /// A feedback (recirculation) stream; excluded from the DAG check.
    pub fn feedback(from: usize, to: usize) -> EdgeSpec {
        EdgeSpec {
            from,
            to,
            routing: Routing::RoundRobin,
            label: None,
            feedback: true,
        }
    }
}

/// Why a graph failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no filters.
    Empty,
    /// An edge references a filter id outside the filter list.
    BadEndpoint {
        /// Offending edge index.
        edge: usize,
    },
    /// A labeled edge carries no label, or a non-labeled edge carries one.
    BadLabel {
        /// Offending edge index.
        edge: usize,
    },
    /// The forward (non-feedback) edges contain a cycle.
    Cycle,
    /// A filter declares more than one feedback out-edge.
    MultipleFeedback {
        /// Offending filter id.
        filter: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no filters"),
            GraphError::BadEndpoint { edge } => {
                write!(f, "edge {edge} references a filter outside the graph")
            }
            GraphError::BadLabel { edge } => {
                write!(f, "edge {edge} has a label inconsistent with its routing")
            }
            GraphError::Cycle => write!(f, "forward edges contain a cycle"),
            GraphError::MultipleFeedback { filter } => {
                write!(f, "filter {filter} declares more than one feedback edge")
            }
        }
    }
}

/// A validated DAG of replicated filters.
///
/// Construction checks endpoints, label consistency, single-feedback per
/// filter, and acyclicity of the forward edges (Kahn's algorithm); the
/// accessors below are what the runners consume.
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    filters: Vec<FilterSpec>,
    edges: Vec<EdgeSpec>,
    /// Per filter: out-edge ids in declaration order (forward edges only).
    out_edges: Vec<Vec<usize>>,
    /// Per filter: in-edge ids in declaration order (forward edges only).
    in_edges: Vec<Vec<usize>>,
    /// Per filter: its feedback out-edge, if declared.
    feedback: Vec<Option<usize>>,
    /// Filters in one valid topological order of the forward edges.
    topo: Vec<usize>,
}

impl DataflowGraph {
    /// Validate and build a graph from filters and edges.
    pub fn new(
        filters: Vec<FilterSpec>,
        edges: Vec<EdgeSpec>,
    ) -> Result<DataflowGraph, GraphError> {
        if filters.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = filters.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut feedback = vec![None; n];
        for (ei, e) in edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(GraphError::BadEndpoint { edge: ei });
            }
            let label_ok = match e.routing {
                Routing::Labeled => e.label.is_some(),
                Routing::RoundRobin | Routing::Broadcast => e.label.is_none(),
            };
            if !label_ok {
                return Err(GraphError::BadLabel { edge: ei });
            }
            if e.feedback {
                if feedback[e.from].is_some() {
                    return Err(GraphError::MultipleFeedback { filter: e.from });
                }
                feedback[e.from] = Some(ei);
            } else {
                out_edges[e.from].push(ei);
                in_edges[e.to].push(ei);
            }
        }
        // Kahn's algorithm over the forward edges.
        let mut indegree: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut frontier: Vec<usize> = (0..n).filter(|&f| indegree[f] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(f) = frontier.pop() {
            topo.push(f);
            for &ei in &out_edges[f] {
                let t = edges[ei].to;
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    frontier.push(t);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }
        Ok(DataflowGraph {
            filters,
            edges,
            out_edges,
            in_edges,
            feedback,
            topo,
        })
    }

    /// The degenerate single-filter graph (today's engine shape).
    pub fn single(name: &str) -> DataflowGraph {
        DataflowGraph::new(vec![FilterSpec::new(name)], Vec::new()).expect("single filter is valid")
    }

    /// A linear pipeline with one round-robin stream between each pair of
    /// consecutive filters.
    pub fn pipeline(names: &[&str]) -> DataflowGraph {
        let filters = names.iter().map(|n| FilterSpec::new(n)).collect();
        let edges = (1..names.len())
            .map(|i| EdgeSpec::round_robin(i - 1, i))
            .collect();
        DataflowGraph::new(filters, edges).expect("pipeline is valid")
    }

    /// A fan-out/fan-in diamond: `source` splits round-robin over two
    /// branch filters which both feed `sink`.
    pub fn diamond(source: &str, left: &str, right: &str, sink: &str) -> DataflowGraph {
        DataflowGraph::new(
            vec![
                FilterSpec::new(source),
                FilterSpec::new(left),
                FilterSpec::new(right),
                FilterSpec::new(sink),
            ],
            vec![
                EdgeSpec::round_robin(0, 1),
                EdgeSpec::round_robin(0, 2),
                EdgeSpec::round_robin(1, 3),
                EdgeSpec::round_robin(2, 3),
            ],
        )
        .expect("diamond is valid")
    }

    /// Number of filters.
    pub fn n_filters(&self) -> usize {
        self.filters.len()
    }

    /// The filter specs, indexed by filter id.
    pub fn filters(&self) -> &[FilterSpec] {
        &self.filters
    }

    /// All edges (forward and feedback), indexed by edge id.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// One edge by id.
    pub fn edge(&self, id: usize) -> &EdgeSpec {
        &self.edges[id]
    }

    /// Forward out-edge ids of `filter`, in declaration order.
    pub fn out_edges(&self, filter: usize) -> &[usize] {
        &self.out_edges[filter]
    }

    /// Forward in-edge ids of `filter`, in declaration order.
    pub fn in_edges(&self, filter: usize) -> &[usize] {
        &self.in_edges[filter]
    }

    /// The filter's feedback out-edge, if declared.
    pub fn feedback_edge(&self, filter: usize) -> Option<usize> {
        self.feedback[filter]
    }

    /// Filters with no forward in-edges (the graph's sources).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.n_filters())
            .filter(|&f| self.in_edges[f].is_empty())
            .collect()
    }

    /// Filters with no forward out-edges (the graph's sinks).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n_filters())
            .filter(|&f| self.out_edges[f].is_empty())
            .collect()
    }

    /// Filters in a valid topological order of the forward edges.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// True if any edge uses broadcast routing (backends whose task
    /// payloads cannot be cloned reject such graphs).
    pub fn has_broadcast(&self) -> bool {
        self.edges.iter().any(|e| e.routing == Routing::Broadcast)
    }

    /// Resolve delivery for one buffer of `level` emitted forward by
    /// `from`: every broadcast out-edge receives a copy, every labeled
    /// out-edge whose label matches receives one, and — if neither rule
    /// delivered — one round-robin out-edge (rotated via `cursors`)
    /// receives it. An empty result means the emission leaves the graph
    /// (`from` is a sink for this buffer).
    pub fn route_forward(
        &self,
        from: usize,
        level: u8,
        cursors: &mut RoutingCursors,
    ) -> Vec<usize> {
        let mut targets = Vec::new();
        let mut matched = false;
        for &ei in &self.out_edges[from] {
            match self.edges[ei].routing {
                Routing::Broadcast => targets.push(ei),
                Routing::Labeled => {
                    if self.edges[ei].label == Some(level) {
                        targets.push(ei);
                        matched = true;
                    }
                }
                Routing::RoundRobin => {}
            }
        }
        if !matched {
            let rr: Vec<usize> = self.out_edges[from]
                .iter()
                .copied()
                .filter(|&ei| self.edges[ei].routing == Routing::RoundRobin)
                .collect();
            if !rr.is_empty() {
                let cur = &mut cursors.next_out[from];
                targets.push(rr[*cur % rr.len()]);
                *cur = (*cur + 1) % rr.len();
            }
        }
        targets
    }
}

/// Per-filter round-robin rotation state for [`DataflowGraph::route_forward`].
///
/// Owned by the runner (not the graph) so a shared graph value can drive
/// many concurrent runs; all cursors start at the first declared
/// round-robin edge, which every backend must preserve for cross-backend
/// parity.
#[derive(Debug, Clone)]
pub struct RoutingCursors {
    next_out: Vec<usize>,
}

impl RoutingCursors {
    /// Fresh cursors (first round-robin edge next) for `graph`.
    pub fn new(graph: &DataflowGraph) -> RoutingCursors {
        RoutingCursors {
            next_out: vec![0; graph.n_filters()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_filter_graph_is_degenerate() {
        let g = DataflowGraph::single("only");
        assert_eq!(g.n_filters(), 1);
        assert!(g.out_edges(0).is_empty());
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![0]);
        let mut cur = RoutingCursors::new(&g);
        assert!(g.route_forward(0, 0, &mut cur).is_empty());
    }

    #[test]
    fn pipeline_chains_round_robin_edges() {
        let g = DataflowGraph::pipeline(&["a", "b", "c"]);
        assert_eq!(g.n_filters(), 3);
        assert_eq!(g.out_edges(0), &[0]);
        assert_eq!(g.in_edges(2), &[1]);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![2]);
        let mut cur = RoutingCursors::new(&g);
        assert_eq!(g.route_forward(0, 0, &mut cur), vec![0]);
        assert_eq!(g.route_forward(1, 0, &mut cur), vec![1]);
    }

    #[test]
    fn diamond_splits_round_robin_and_merges() {
        let g = DataflowGraph::diamond("src", "l", "r", "snk");
        let mut cur = RoutingCursors::new(&g);
        assert_eq!(g.route_forward(0, 0, &mut cur), vec![0]);
        assert_eq!(g.route_forward(0, 0, &mut cur), vec![1]);
        assert_eq!(g.route_forward(0, 0, &mut cur), vec![0]);
        assert_eq!(g.in_edges(3), &[2, 3]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn labeled_edges_match_buffer_level() {
        let g = DataflowGraph::new(
            vec![
                FilterSpec::new("split"),
                FilterSpec::new("low"),
                FilterSpec::new("high"),
            ],
            vec![EdgeSpec::labeled(0, 1, 0), EdgeSpec::labeled(0, 2, 1)],
        )
        .unwrap();
        let mut cur = RoutingCursors::new(&g);
        assert_eq!(g.route_forward(0, 0, &mut cur), vec![0]);
        assert_eq!(g.route_forward(0, 1, &mut cur), vec![1]);
        assert!(g.route_forward(0, 7, &mut cur).is_empty());
    }

    #[test]
    fn broadcast_copies_to_every_broadcast_edge() {
        let g = DataflowGraph::new(
            vec![
                FilterSpec::new("src"),
                FilterSpec::new("a"),
                FilterSpec::new("b"),
            ],
            vec![EdgeSpec::broadcast(0, 1), EdgeSpec::broadcast(0, 2)],
        )
        .unwrap();
        assert!(g.has_broadcast());
        let mut cur = RoutingCursors::new(&g);
        assert_eq!(g.route_forward(0, 3, &mut cur), vec![0, 1]);
    }

    #[test]
    fn labeled_falls_back_to_round_robin_when_unmatched() {
        let g = DataflowGraph::new(
            vec![
                FilterSpec::new("src"),
                FilterSpec::new("special"),
                FilterSpec::new("default"),
            ],
            vec![EdgeSpec::labeled(0, 1, 9), EdgeSpec::round_robin(0, 2)],
        )
        .unwrap();
        let mut cur = RoutingCursors::new(&g);
        assert_eq!(g.route_forward(0, 9, &mut cur), vec![0]);
        assert_eq!(g.route_forward(0, 1, &mut cur), vec![1]);
    }

    #[test]
    fn feedback_edges_do_not_count_as_cycles() {
        let g = DataflowGraph::new(
            vec![FilterSpec::new("reader"), FilterSpec::new("classifier")],
            vec![EdgeSpec::round_robin(0, 1), EdgeSpec::feedback(1, 0)],
        )
        .unwrap();
        assert_eq!(g.feedback_edge(1), Some(1));
        assert_eq!(g.feedback_edge(0), None);
        // The feedback edge never routes forward.
        let mut cur = RoutingCursors::new(&g);
        assert!(g.route_forward(1, 0, &mut cur).is_empty());
    }

    #[test]
    fn forward_cycles_are_rejected() {
        let err = DataflowGraph::new(
            vec![FilterSpec::new("a"), FilterSpec::new("b")],
            vec![EdgeSpec::round_robin(0, 1), EdgeSpec::round_robin(1, 0)],
        )
        .unwrap_err();
        assert_eq!(err, GraphError::Cycle);
    }

    #[test]
    fn bad_endpoints_and_labels_are_rejected() {
        assert_eq!(
            DataflowGraph::new(
                vec![FilterSpec::new("a")],
                vec![EdgeSpec::round_robin(0, 5)]
            )
            .unwrap_err(),
            GraphError::BadEndpoint { edge: 0 }
        );
        assert_eq!(
            DataflowGraph::new(
                vec![FilterSpec::new("a"), FilterSpec::new("b")],
                vec![EdgeSpec {
                    from: 0,
                    to: 1,
                    routing: Routing::Labeled,
                    label: None,
                    feedback: false,
                }],
            )
            .unwrap_err(),
            GraphError::BadLabel { edge: 0 }
        );
        assert_eq!(
            DataflowGraph::new(Vec::new(), Vec::new()).unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn multiple_feedback_edges_per_filter_are_rejected() {
        let err = DataflowGraph::new(
            vec![FilterSpec::new("a"), FilterSpec::new("b")],
            vec![
                EdgeSpec::round_robin(0, 1),
                EdgeSpec::feedback(1, 0),
                EdgeSpec::feedback(1, 0),
            ],
        )
        .unwrap_err();
        assert_eq!(err, GraphError::MultipleFeedback { filter: 1 });
    }

    #[test]
    fn topo_order_respects_forward_edges() {
        let g = DataflowGraph::diamond("s", "l", "r", "k");
        let pos: Vec<usize> = {
            let order = g.topo_order();
            (0..4)
                .map(|f| order.iter().position(|&x| x == f).unwrap())
                .collect()
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }
}
