//! `anthill::faults` — deterministic, seedable fault injection for any
//! driver of the scheduling engine.
//!
//! The paper's testbed is a real 14-node cluster: links drop control
//! messages, workers stall, GPUs fall over mid-run. This module models
//! those failures as a *pure decision layer* the drivers consult at each
//! hop:
//!
//! * **Message faults** — every request or reply traversing the transport
//!   asks [`FaultInjector::message_fate`] whether it is delivered, delayed
//!   by a fixed span, or dropped on the wire.
//! * **Transient task failures** — a completed execution asks
//!   [`FaultInjector::task_fails`] whether the result is discarded (the
//!   device time was still spent — the buffer must be re-run).
//! * **Permanent worker death** — [`FaultConfig::deaths`] lists `(node,
//!   worker, at)` triples; the driver kills the slot at the given virtual
//!   time and hands its in-flight buffers back to the engine.
//!
//! Decisions come from per-category forks of a [`SimRng`] seeded by
//! [`FaultConfig::seed`], so a fault schedule is a pure function of the
//! configuration: two runs with the same seed inject the *identical*
//! faults, which is what lets the chaos tests compare policies under the
//! same failure trace and lets CI replay a failing schedule. At zero
//! probability every query short-circuits before touching the RNG, so a
//! fault-wrapped driver is byte-identical to an unwrapped one (asserted by
//! the chaos parity tests).
//!
//! Recovery knobs live in [`RecoveryConfig`] and are consumed by
//! `engine::core`: per-request timeouts, bounded exponential-backoff
//! retry, dead-worker re-enqueue, and health-based demand throttling
//! (DESIGN.md "Failure model").

use anthill_simkit::{SimDuration, SimRng, SimTime};

use crate::engine::core::{Transport, WorkerRef};

/// A per-worker-overridable probability in `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct FaultProb {
    /// Probability applied to every worker without an override.
    pub base: f64,
    /// `(node, worker, probability)` overrides.
    pub per_worker: Vec<(usize, usize, f64)>,
}

impl FaultProb {
    /// A probability applied uniformly to all workers.
    pub fn uniform(p: f64) -> FaultProb {
        FaultProb {
            base: p,
            per_worker: Vec::new(),
        }
    }

    /// The probability in effect for `(node, worker)`.
    pub fn for_worker(&self, node: usize, worker: usize) -> f64 {
        self.per_worker
            .iter()
            .find(|&&(n, w, _)| n == node && w == worker)
            .map(|&(_, _, p)| p)
            .unwrap_or(self.base)
    }

    /// True when no worker can ever draw a fault from this schedule.
    pub fn is_zero(&self) -> bool {
        self.base <= 0.0 && self.per_worker.iter().all(|&(_, _, p)| p <= 0.0)
    }
}

/// One scheduled permanent worker death.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerDeathSpec {
    /// Hosting node index.
    pub node: usize,
    /// Worker slot index within the node.
    pub worker: usize,
    /// Virtual time of the failure.
    pub at: SimTime,
}

/// One scheduled connection sever for the networked backend: after the
/// coordinator has written `after_frames` frames to the worker's socket,
/// the connection is shut down both ways. The worker sees EOF and exits;
/// the coordinator sees EOF and maps the sever onto the existing permanent
/// death model ([`WorkerDeathSpec`] semantics: in-flight buffers re-homed,
/// the slot retired). Frame counts are deterministic in the lockstep
/// driver, making severs replayable the way virtual-time deaths are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionDropSpec {
    /// Hosting node index.
    pub node: usize,
    /// Worker slot index within the node.
    pub worker: usize,
    /// Coordinator→worker frames delivered before the sever (the `Hello`
    /// handshake frame counts).
    pub after_frames: u64,
}

/// Engine-side recovery knobs (consumed by `engine::core`).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Arm per-request timeouts and the retry/re-enqueue machinery. When
    /// false the engine behaves exactly as before this layer existed.
    pub enabled: bool,
    /// Base per-request timeout (attempt 0). Must comfortably exceed the
    /// worst fault-free round trip or healthy requests will retry.
    pub request_timeout: SimDuration,
    /// Retries per request before the demand slot is released (the task
    /// itself is never lost — a released slot just re-pumps fresh demand).
    pub max_retries: u32,
    /// Cap on the exponentially backed-off timeout.
    pub backoff_cap: SimDuration,
    /// Multiplicative health decay on a transient task failure (0..1).
    pub health_decay: f64,
    /// Additive health recovery per successful completion.
    pub health_recovery: f64,
}

impl RecoveryConfig {
    /// Recovery switched off: the engine schedules no timeouts and decays
    /// no weights (the pre-fault-layer behaviour, byte-identical traces).
    pub fn disabled() -> RecoveryConfig {
        RecoveryConfig {
            enabled: false,
            request_timeout: SimDuration::ZERO,
            max_retries: 0,
            backoff_cap: SimDuration::ZERO,
            health_decay: 1.0,
            health_recovery: 0.0,
        }
    }

    /// Sensible defaults for the simulated cluster: 500 ms virtual-time
    /// base timeout (fault-free round trips are well under 100 ms), 6
    /// retries, 8 s backoff cap, halve health per failure, recover 5% per
    /// success.
    pub fn standard() -> RecoveryConfig {
        RecoveryConfig {
            enabled: true,
            request_timeout: SimDuration::from_millis(500),
            max_retries: 6,
            backoff_cap: SimDuration::from_secs(8),
            health_decay: 0.5,
            health_recovery: 0.05,
        }
    }
}

/// A complete fault schedule for one run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Root seed of the injection RNG (independent of the workload seed).
    pub seed: u64,
    /// Per-message drop probability (requests and replies).
    pub drop: FaultProb,
    /// Per-message delay probability.
    pub delay: FaultProb,
    /// Span added to a delayed message.
    pub delay_by: SimDuration,
    /// Per-completion transient-failure probability.
    pub task_fail: FaultProb,
    /// Scheduled permanent worker deaths.
    pub deaths: Vec<WorkerDeathSpec>,
    /// Engine recovery knobs.
    pub recovery: RecoveryConfig,
}

impl FaultConfig {
    /// No faults, no recovery: drivers behave exactly as without the layer.
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop: FaultProb::default(),
            delay: FaultProb::default(),
            delay_by: SimDuration::ZERO,
            task_fail: FaultProb::default(),
            deaths: Vec::new(),
            recovery: RecoveryConfig::disabled(),
        }
    }

    /// A uniform message-drop schedule with standard recovery.
    pub fn message_drop(seed: u64, p: f64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: FaultProb::uniform(p),
            recovery: RecoveryConfig::standard(),
            ..FaultConfig::none()
        }
    }

    /// Does this schedule inject anything at all?
    pub fn is_active(&self) -> bool {
        !self.drop.is_zero()
            || !self.delay.is_zero()
            || !self.task_fail.is_zero()
            || !self.deaths.is_empty()
    }
}

/// What the injector decided for one message hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered normally.
    Deliver,
    /// Delivered after the extra span.
    Delay(SimDuration),
    /// Lost on the wire.
    Drop,
}

/// The deterministic decision core: per-category RNG streams forked from
/// one seed, queried by drivers at each hop.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop: FaultProb,
    delay: FaultProb,
    delay_by: SimDuration,
    task_fail: FaultProb,
    rng_msg: SimRng,
    rng_task: SimRng,
}

impl FaultInjector {
    /// An injector for the given schedule.
    pub fn new(cfg: &FaultConfig) -> FaultInjector {
        let root = SimRng::new(cfg.seed);
        FaultInjector {
            drop: cfg.drop.clone(),
            delay: cfg.delay.clone(),
            delay_by: cfg.delay_by,
            task_fail: cfg.task_fail.clone(),
            rng_msg: root.fork("faults-message"),
            rng_task: root.fork("faults-task"),
        }
    }

    /// Decide the fate of one message to/from `(node, worker)`.
    ///
    /// The zero-probability fast path never touches the RNG, so an
    /// all-zero schedule draws an identical (empty) random stream to no
    /// schedule at all.
    pub fn message_fate(&mut self, node: usize, worker: usize) -> MessageFate {
        let p_drop = self.drop.for_worker(node, worker);
        if p_drop > 0.0 && self.rng_msg.chance(p_drop) {
            return MessageFate::Drop;
        }
        let p_delay = self.delay.for_worker(node, worker);
        if p_delay > 0.0 && self.rng_msg.chance(p_delay) {
            return MessageFate::Delay(self.delay_by);
        }
        MessageFate::Deliver
    }

    /// Decide whether a completion on `(node, worker)` transiently fails.
    pub fn task_fails(&mut self, node: usize, worker: usize) -> bool {
        let p = self.task_fail.for_worker(node, worker);
        p > 0.0 && self.rng_task.chance(p)
    }
}

/// A [`Transport`] wrapper that drops requests per the injector's message
/// schedule — the generic fault layer for drivers whose transport has no
/// native notion of loss (the DES driver instead consults the injector
/// inline, because dropping there must also skip the modeled network
/// send). Delay requires a driver-owned timer and is therefore driver
/// cooperation, not wrappable; see the module docs.
pub struct FaultyTransport<'a, D> {
    inner: &'a mut D,
    injector: &'a mut FaultInjector,
    /// Requests swallowed by the wrapper.
    pub dropped: u64,
}

impl<'a, D: Transport> FaultyTransport<'a, D> {
    /// Wrap `inner`, consulting `injector` for every request hop.
    pub fn new(inner: &'a mut D, injector: &'a mut FaultInjector) -> FaultyTransport<'a, D> {
        FaultyTransport {
            inner,
            injector,
            dropped: 0,
        }
    }
}

impl<D: Transport> Transport for FaultyTransport<'_, D> {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        match self.injector.message_fate(from.node, from.worker) {
            MessageFate::Drop => self.dropped += 1,
            // A pure Transport has no timer; a delayed request degrades to
            // a delivered one here (the DES driver prices real delays).
            MessageFate::Delay(_) | MessageFate::Deliver => {
                self.inner.send_request(from, reader, req_id);
            }
        }
    }

    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        self.inner.schedule_timeout(worker, req_id, fire_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_hetsim::{DeviceId, DeviceKind};

    fn wref() -> WorkerRef {
        WorkerRef {
            node: 0,
            worker: 0,
            device: DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index: 0,
            },
        }
    }

    #[test]
    fn per_worker_override_wins_over_base() {
        let p = FaultProb {
            base: 0.1,
            per_worker: vec![(1, 0, 0.9)],
        };
        assert_eq!(p.for_worker(0, 0), 0.1);
        assert_eq!(p.for_worker(1, 0), 0.9);
        assert!(!p.is_zero());
        assert!(FaultProb::default().is_zero());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = FaultConfig::message_drop(7, 0.3);
        let draw = |mut inj: FaultInjector| -> Vec<MessageFate> {
            (0..64).map(|_| inj.message_fate(0, 0)).collect()
        };
        let a = draw(FaultInjector::new(&cfg));
        let b = draw(FaultInjector::new(&cfg));
        assert_eq!(a, b, "same seed, same fault schedule");
        let c = draw(FaultInjector::new(&FaultConfig::message_drop(8, 0.3)));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn drop_rate_tracks_the_probability() {
        let mut inj = FaultInjector::new(&FaultConfig::message_drop(42, 0.2));
        let drops = (0..10_000)
            .filter(|_| inj.message_fate(0, 0) == MessageFate::Drop)
            .count();
        assert!((1_600..2_400).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn zero_probability_never_draws() {
        let mut inj = FaultInjector::new(&FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(inj.message_fate(3, 1), MessageFate::Deliver);
            assert!(!inj.task_fails(3, 1));
        }
        assert!(!FaultConfig::none().is_active());
        assert!(FaultConfig::message_drop(0, 0.1).is_active());
    }

    #[test]
    fn message_and_task_streams_are_independent() {
        // Consuming task draws must not shift the message stream.
        let cfg = FaultConfig {
            task_fail: FaultProb::uniform(0.5),
            ..FaultConfig::message_drop(11, 0.5)
        };
        let mut a = FaultInjector::new(&cfg);
        let mut b = FaultInjector::new(&cfg);
        for _ in 0..32 {
            b.task_fails(0, 0);
        }
        let fa: Vec<_> = (0..32).map(|_| a.message_fate(0, 0)).collect();
        let fb: Vec<_> = (0..32).map(|_| b.message_fate(0, 0)).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn faulty_transport_drops_per_schedule() {
        struct Count(u64);
        impl Transport for Count {
            fn send_request(&mut self, _f: WorkerRef, _r: usize, _id: u64) {
                self.0 += 1;
            }
        }
        let mut inner = Count(0);
        let mut inj = FaultInjector::new(&FaultConfig::message_drop(5, 0.4));
        let mut t = FaultyTransport::new(&mut inner, &mut inj);
        for id in 0..1_000 {
            t.send_request(wref(), 0, id);
        }
        let dropped = t.dropped;
        assert_eq!(inner.0 + dropped, 1_000, "every request accounted for");
        assert!((250..550).contains(&dropped), "dropped = {dropped}");
    }

    #[test]
    fn faulty_transport_is_transparent_at_zero_probability() {
        struct Log(Vec<u64>);
        impl Transport for Log {
            fn send_request(&mut self, _f: WorkerRef, _r: usize, id: u64) {
                self.0.push(id);
            }
        }
        let mut inner = Log(Vec::new());
        let mut inj = FaultInjector::new(&FaultConfig::none());
        let mut t = FaultyTransport::new(&mut inner, &mut inj);
        for id in 0..64 {
            t.send_request(wref(), 0, id);
        }
        assert_eq!(t.dropped, 0);
        assert_eq!(inner.0, (0..64).collect::<Vec<_>>());
    }
}
