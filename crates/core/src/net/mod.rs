//! `anthill::net` — the TCP multi-process backend.
//!
//! The paper's Anthill deployment spreads filter instances across a
//! gigabit-Ethernet cluster; this module is the reproduction's third
//! backend, putting the scheduling engine in a *coordinator* process and
//! the filter handlers in *worker* processes connected over TCP. The
//! split mirrors the other backends exactly — all decisions stay in
//! [`crate::engine`], and this module only prices the hops:
//!
//! * [`frame`] — the wire protocol: `[magic][tag][len]`-framed binary
//!   messages carrying requests, [`DataBuffer`](crate::buffer::DataBuffer)
//!   payloads (including `TaskParams`), completions with worker-side
//!   trace spans, and heartbeats, plus an incremental decoder that
//!   tolerates arbitrarily split or coalesced reads and rejects corrupt
//!   headers before buffering a payload.
//! * [`worker`] — the stateless worker loop (echo requests, execute
//!   deliveries, heartbeat when idle), runnable as a child process via
//!   the `repro` binary's hidden `worker` subcommand, as the dedicated
//!   `net_worker` binary, or as an in-process thread for fast loopback
//!   tests.
//! * [`driver`] — the coordinator: a lockstep deterministic mode whose
//!   engine-callback order is identical to the sequential reference
//!   driver (bit-identical per-device counts, pinned by the parity
//!   suite), and a concurrent wall-clock mode where worker death — killed
//!   process, severed connection
//!   ([`ConnectionDropSpec`](crate::faults::ConnectionDropSpec)),
//!   heartbeat silence — flows into the engine's recovery path.
//!
//! Connection lifecycle: connect → `Hello` handshake (slot identity
//! echoed both ways) → request/deliver/complete traffic bounded by the
//! engine's demand windows → `Shutdown`/`Bye`. Worker trace spans ride
//! back on `Complete` frames and are re-stamped onto the coordinator's
//! clock as `remote_start`/`remote_finish` events, so `obs` exporters see
//! one merged, deterministically ordered stream.

pub mod conn;
pub mod driver;
pub mod eventloop;
pub mod frame;
pub mod worker;

pub use conn::{Conn, RawIo, ReadStatus, WireStats};
pub use driver::{
    run_concurrent, run_concurrent_elastic, run_concurrent_load, run_concurrent_load_autoscaled,
    run_deterministic, run_graph_deterministic, run_graph_deterministic_with, DrainAt, ElasticLoad,
    ElasticOutcome, NetConfig, NetGraphOutcome, NetLoadReport, NetOutcome, NetPath, NetQueueSample,
    NetTaskTiming, NetWorkerConn,
};
pub use frame::{
    encode_deliver_at_into, encode_deliver_into, encode_frame, encode_frame_into, BufPool, Frame,
    FrameDecoder, FrameError, WireSpan,
};
pub use worker::{
    connect_and_run, join_and_run, join_handshake, run_worker, run_worker_primed,
    spawn_joining_worker_thread, spawn_worker_thread, Behavior,
};

use std::io;
use std::net::{TcpListener, TcpStream};

/// A connected loopback socket pair: `(coordinator side, worker side)`.
///
/// The listener lives only long enough to accept the one connection —
/// the standard std-only substitute for `socketpair`.
pub fn tcp_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let coordinator = TcpStream::connect(addr)?;
    let (worker, _) = listener.accept()?;
    Ok((coordinator, worker))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferId, DataBuffer};
    use crate::policy::Policy;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{DeviceId, DeviceKind, GpuParams, TaskShape};
    use anthill_simkit::SimDuration;

    fn tile(id: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[32.0]),
            shape: TaskShape {
                cpu: SimDuration::from_micros(400),
                gpu_kernel: SimDuration::from_micros(400),
                bytes_in: 0,
                bytes_out: 0,
            },
            level: 0,
            task: id,
        }
    }

    fn loopback_workers(kinds: &[DeviceKind], behavior: Behavior) -> Vec<NetWorkerConn> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let (coord, worker_side) = tcp_pair().expect("loopback pair");
                spawn_worker_thread(worker_side, behavior);
                NetWorkerConn {
                    device: DeviceId {
                        node: 0,
                        kind,
                        index: i,
                    },
                    stream: coord,
                }
            })
            .collect()
    }

    #[test]
    fn lockstep_loopback_processes_every_source_once() {
        let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Gpu], Behavior::Identity);
        let out = run_deterministic(
            NetConfig::new(Policy::ddfcfs(4)),
            workers,
            (0..50).map(tile).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("net run");
        assert_eq!(out.total, 50);
        assert_eq!(out.deaths, 0);
        let mut ids: Vec<u64> = out.dispatch_order.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn lockstep_matches_the_sequential_reference_driver() {
        use crate::engine::sequential::{run as seq_run, Emission, SequentialConfig};
        let devices = [
            DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index: 0,
            },
            DeviceId {
                node: 0,
                kind: DeviceKind::Gpu,
                index: 0,
            },
        ];
        for policy in [Policy::ddfcfs(4), Policy::ddwrr(8), Policy::odds()] {
            let seq = seq_run(
                SequentialConfig::new(policy),
                &devices,
                (0..60).map(tile).collect(),
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
                |_, _| Emission::default(),
            );
            let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Gpu], Behavior::Identity);
            let net = run_deterministic(
                NetConfig::new(policy),
                workers,
                (0..60).map(tile).collect(),
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
            )
            .expect("net run");
            assert_eq!(net.assigned, seq.assigned, "policy {policy:?}");
            assert_eq!(net.dispatch_order, seq.dispatch_order, "policy {policy:?}");
        }
    }

    #[test]
    fn concurrent_loopback_completes_with_recirculation() {
        let workers = loopback_workers(
            &[DeviceKind::Cpu, DeviceKind::Cpu],
            Behavior::Recirc { rounds: 2 },
        );
        let out = run_concurrent(
            NetConfig::new(Policy::ddwrr(8)),
            workers,
            (0..30).map(tile).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("net run");
        assert_eq!(out.total, 60, "30 seeds + 30 recirculated");
        assert_eq!(out.deaths, 0);
    }

    #[test]
    fn concurrent_load_loopback_completes_every_admitted_arrival() {
        use crate::engine::AdmissionConfig;
        use std::time::Duration;
        let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Cpu], Behavior::Identity);
        let arrivals: Vec<u64> = (0..200).map(|i| i * 50_000).collect(); // 50 µs apart
        let mut timings = Vec::new();
        let report = run_concurrent_load(
            NetConfig::new(Policy::ddfcfs(4)),
            AdmissionConfig::default(),
            workers,
            &arrivals,
            &mut |i, _| tile(i),
            Duration::from_millis(1),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            &mut |t| timings.push(t),
        )
        .expect("net load run");
        assert!(report.admission.conserved(), "{:?}", report.admission);
        assert_eq!(report.admission.generated, 200);
        assert_eq!(report.admission.admitted, 200);
        assert_eq!(report.completed, 200);
        assert_eq!(report.outcome.total, 200);
        assert_eq!(timings.len(), 200);
        let mut ids: Vec<u64> = timings.iter().map(|t| t.buffer).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<u64>>());
        assert!(timings.iter().all(|t| t.e2e_ns >= t.service_ns));
        assert!(!report.queue_depth.is_empty());
    }

    #[test]
    fn concurrent_load_shed_policy_bounds_a_saturating_schedule() {
        use crate::engine::{AdmissionConfig, OverloadPolicy};
        use std::time::Duration;
        // One deliberately slow worker against back-to-back arrivals: the
        // shed policy must keep intake bounded and the run on schedule.
        let workers = loopback_workers(&[DeviceKind::Cpu], Behavior::Busy { micros: 300 });
        let arrivals: Vec<u64> = (0..400).map(|i| i * 10_000).collect(); // 10 µs apart
        let cfg = AdmissionConfig {
            inflight_cap: 4,
            queue_cap: 8,
            policy: OverloadPolicy::ShedOldest,
        };
        let report = run_concurrent_load(
            NetConfig::new(Policy::ddfcfs(4)),
            cfg,
            workers,
            &arrivals,
            &mut |i, _| tile(i),
            Duration::from_millis(1),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            &mut |_| {},
        )
        .expect("net load run");
        assert!(report.admission.conserved(), "{:?}", report.admission);
        assert_eq!(report.admission.generated, 400);
        assert!(report.admission.shed > 0, "{:?}", report.admission);
        assert_eq!(report.completed, report.admission.admitted);
        assert!(report.queue_depth.iter().all(|s| s.intake <= 8));
    }

    /// One connection set per filter: `filters[f]` lists the device kinds
    /// serving filter `f` and the behavior its workers run.
    fn graph_loopback_workers(filters: &[(&[DeviceKind], Behavior)]) -> Vec<Vec<NetWorkerConn>> {
        filters
            .iter()
            .enumerate()
            .map(|(f, &(kinds, behavior))| {
                kinds
                    .iter()
                    .enumerate()
                    .map(|(i, &kind)| {
                        let (coord, worker_side) = tcp_pair().expect("loopback pair");
                        spawn_worker_thread(worker_side, behavior);
                        NetWorkerConn {
                            device: DeviceId {
                                node: f,
                                kind,
                                index: i,
                            },
                            stream: coord,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn graph_lockstep_pipeline_conserves_per_edge() {
        use crate::graph::DataflowGraph;
        let graph = DataflowGraph::pipeline(&["reader", "feature", "classifier"]);
        let cpu: &[DeviceKind] = &[DeviceKind::Cpu];
        let workers = graph_loopback_workers(&[
            (cpu, Behavior::Identity),
            (cpu, Behavior::Identity),
            (cpu, Behavior::Identity),
        ]);
        let out = run_graph_deterministic(
            NetConfig::new(Policy::ddfcfs(4)),
            &graph,
            workers,
            (0..30).map(|i| (0usize, tile(i))).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("graph net run");
        assert_eq!(out.total, 90, "every buffer crosses all three filters");
        assert_eq!(out.outputs.len(), 30);
        assert_eq!(out.edge_delivered.get(&0), Some(&30));
        assert_eq!(out.edge_delivered.get(&1), Some(&30));
        assert_eq!(out.deaths, 0);
        for f in 0..3 {
            let done: u64 = out
                .assigned
                .iter()
                .filter(|((node, _, _), _)| *node == f)
                .map(|(_, &n)| n)
                .sum();
            assert_eq!(done, 30, "filter {f}");
        }
    }

    #[test]
    fn graph_lockstep_diamond_splits_round_robin() {
        use crate::graph::DataflowGraph;
        let graph = DataflowGraph::diamond("src", "left", "right", "sink");
        let cpu: &[DeviceKind] = &[DeviceKind::Cpu];
        let workers = graph_loopback_workers(&[
            (cpu, Behavior::Identity),
            (cpu, Behavior::Identity),
            (cpu, Behavior::Identity),
            (cpu, Behavior::Identity),
        ]);
        let out = run_graph_deterministic(
            NetConfig::new(Policy::ddfcfs(4)),
            &graph,
            workers,
            (0..40).map(|i| (0usize, tile(i))).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("graph net run");
        assert_eq!(out.total, 120, "src + one branch + sink per buffer");
        assert_eq!(out.outputs.len(), 40);
        for e in 0..4u32 {
            assert_eq!(out.edge_delivered.get(&e), Some(&20), "edge {e}");
        }
    }

    #[test]
    fn graph_lockstep_feedback_edge_routes_recirculation_upstream() {
        use crate::graph::{DataflowGraph, EdgeSpec, FilterSpec};
        let graph = DataflowGraph::new(
            vec![FilterSpec::new("head"), FilterSpec::new("tail")],
            vec![EdgeSpec::round_robin(0, 1), EdgeSpec::feedback(1, 0)],
        )
        .expect("valid graph");
        let cpu: &[DeviceKind] = &[DeviceKind::Cpu];
        let workers = graph_loopback_workers(&[
            (cpu, Behavior::Identity),
            (cpu, Behavior::Recirc { rounds: 2 }),
        ]);
        let out = run_graph_deterministic(
            NetConfig::new(Policy::ddfcfs(4)),
            &graph,
            workers,
            (0..16).map(|i| (0usize, tile(i))).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("graph net run");
        // Each buffer: head(0) → tail(0, recirc) → feedback → head(1) →
        // tail(1) → out. Four completions per buffer, two trips per edge
        // on the forward edge, one on the feedback edge.
        assert_eq!(out.total, 64);
        assert_eq!(out.outputs.len(), 16);
        assert!(out.outputs.iter().all(|b| b.level == 1));
        assert_eq!(out.edge_delivered.get(&0), Some(&32), "forward edge");
        assert_eq!(out.edge_delivered.get(&1), Some(&16), "feedback edge");
    }

    #[test]
    fn graph_lockstep_runs_are_deterministic() {
        use crate::graph::DataflowGraph;
        let run = || {
            let graph = DataflowGraph::diamond("src", "left", "right", "sink");
            let devs: &[DeviceKind] = &[DeviceKind::Cpu, DeviceKind::Gpu];
            let workers = graph_loopback_workers(&[
                (devs, Behavior::Identity),
                (devs, Behavior::Identity),
                (devs, Behavior::Identity),
                (devs, Behavior::Identity),
            ]);
            run_graph_deterministic(
                NetConfig::new(Policy::ddwrr(8)),
                &graph,
                workers,
                (0..32).map(|i| (0usize, tile(i))).collect(),
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
            )
            .expect("graph net run")
        };
        let a = run();
        let b = run();
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.dispatch_order, b.dispatch_order);
        assert_eq!(a.edge_delivered, b.edge_delivered);
        let ids = |o: &NetGraphOutcome| o.outputs.iter().map(|x| x.id.0).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn severed_connection_maps_onto_worker_death() {
        use crate::faults::ConnectionDropSpec;
        let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Cpu], Behavior::Identity);
        let mut cfg = NetConfig::new(Policy::ddfcfs(4));
        cfg.recovery = crate::faults::RecoveryConfig::standard();
        cfg.drops = vec![ConnectionDropSpec {
            node: 0,
            worker: 1,
            after_frames: 20,
        }];
        let out = run_concurrent(
            cfg,
            workers,
            (0..40).map(tile).collect(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        )
        .expect("net run");
        assert_eq!(out.total, 40, "every buffer completes despite the sever");
        assert_eq!(out.deaths, 1);
    }
}
