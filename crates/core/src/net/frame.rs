//! The wire protocol of the networked backend: a length-prefixed binary
//! frame codec.
//!
//! Every message on a coordinator↔worker connection is one *frame*:
//!
//! ```text
//! ┌───────┬─────┬──────────────┬───────────────┐
//! │ MAGIC │ tag │ len (u32 LE) │ payload bytes │
//! └───────┴─────┴──────────────┴───────────────┘
//! ```
//!
//! The 6-byte header is validated before any payload is buffered: a wrong
//! magic byte, an unknown tag, or a length above [`MAX_FRAME`] rejects the
//! stream immediately (a desynchronized or corrupt peer must not make the
//! decoder allocate unbounded memory). Payloads are hand-rolled
//! little-endian integers and length-prefixed UTF-8 — no float formatting,
//! no self-describing envelope — so encoding is byte-deterministic and the
//! codec round-trips [`DataBuffer`]s (including mixed numeric/categorical
//! [`TaskParams`]) exactly.
//!
//! [`FrameDecoder`] is incremental: feed it whatever slice the socket
//! produced — one byte at a time, half a header, three coalesced frames —
//! and pop complete frames as they materialize. The codec proptests
//! (`tests/net_codec.rs`) drive exactly those splits.

use std::fmt;

use anthill_estimator::{ParamValue, TaskParams};
use anthill_hetsim::{DeviceKind, TaskShape};
use anthill_simkit::SimDuration;

use crate::buffer::{BufferId, DataBuffer};

/// First byte of every frame; anything else means the stream is corrupt
/// or desynchronized.
pub const MAGIC: u8 = 0xA7;

/// Upper bound on a frame payload (16 MiB). A header announcing more is
/// rejected before any payload is buffered.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first header byte was not [`MAGIC`].
    BadMagic(u8),
    /// The tag byte named no known frame type.
    BadTag(u8),
    /// The announced payload length exceeded [`MAX_FRAME`].
    Oversize(u32),
    /// The payload ended before its fields did, or a field was malformed.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::BadPayload(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

/// A worker-side execution span, in nanoseconds of the worker's own
/// monotonic clock (the coordinator re-stamps it onto the merged trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSpan {
    /// Handler start, worker-epoch nanoseconds.
    pub start_ns: u64,
    /// Handler end, worker-epoch nanoseconds.
    pub end_ns: u64,
}

/// One protocol message (see the module docs for the frame layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Slot assignment, coordinator → worker at connection time; the
    /// worker echoes it back verbatim to prove framing works both ways.
    Hello {
        /// Engine node index the slot lives on.
        node: u32,
        /// Worker slot index within the node.
        slot: u32,
    },
    /// A demand request bounced through the worker's requester: the
    /// coordinator sends it when the engine pumps the worker's window, the
    /// worker forwards it back to the reader (which lives coordinator-side).
    Request {
        /// Target reader (node) index.
        reader: u32,
        /// Engine request id; the echo must carry it unchanged.
        req_id: u64,
    },
    /// A batch of buffers for the worker to execute.
    Deliver {
        /// Device class the executing slot schedules for.
        kind: DeviceKind,
        /// The buffers, in dispatch order.
        buffers: Vec<DataBuffer>,
    },
    /// One executed buffer coming back.
    Complete {
        /// The buffer that ran (round-tripped so completion needs no
        /// coordinator-side lookup table).
        buffer: DataBuffer,
        /// Modeled device occupancy (`shape.cpu` / `shape.gpu_kernel` by
        /// the delivered kind), nanoseconds.
        proc_ns: u64,
        /// Measured worker-side handler span.
        span: WireSpan,
        /// Follow-up buffers the handler recirculated.
        recirculated: Vec<DataBuffer>,
    },
    /// The worker drained its current batch and is idle again.
    BatchDone,
    /// Worker liveness ping.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// Coordinator → worker: finish up and exit.
    Shutdown,
    /// Worker → coordinator: last frame before the worker closes.
    Bye,
    /// A batch of buffers for the worker to execute on behalf of a graph
    /// filter (multi-filter runs; single-filter runs keep [`Frame::Deliver`]
    /// so their wire traffic is byte-identical to pre-graph builds).
    DeliverAt {
        /// Graph filter id hosting the executing slot.
        filter: u32,
        /// Device class the executing slot schedules for.
        kind: DeviceKind,
        /// The buffers, in dispatch order.
        buffers: Vec<DataBuffer>,
    },
    /// One executed buffer coming back from a graph filter.
    CompleteAt {
        /// Graph filter id, echoed unchanged from the [`Frame::DeliverAt`]
        /// (workers are stateless; the coordinator routes by this field).
        filter: u32,
        /// The buffer that ran.
        buffer: DataBuffer,
        /// Modeled device occupancy, nanoseconds.
        proc_ns: u64,
        /// Measured worker-side handler span.
        span: WireSpan,
        /// Follow-up buffers the handler recirculated.
        recirculated: Vec<DataBuffer>,
    },
    /// Worker → coordinator, first frame of a *mid-run* connection: ask to
    /// join the live pool on `node` as a device of `kind` (elastic
    /// membership; connection-time slots use [`Frame::Hello`] instead).
    Join {
        /// Engine node index the joiner wants to host on.
        node: u32,
        /// Device class the joiner schedules for.
        kind: DeviceKind,
    },
    /// Coordinator → worker: the join was accepted and this is the
    /// assigned slot. The worker then speaks the normal protocol.
    JoinAck {
        /// Engine node index the slot lives on.
        node: u32,
        /// Worker slot index within the node.
        slot: u32,
    },
    /// Coordinator → peer: the connection attempt was refused (bad first
    /// frame, pool full, draining coordinator). A typed rejection instead
    /// of a silent drop, so the peer can tell "refused" from "crashed".
    JoinRejected {
        /// Human-readable refusal reason.
        reason: String,
    },
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Request { .. } => 2,
            Frame::Deliver { .. } => 3,
            Frame::Complete { .. } => 4,
            Frame::BatchDone => 5,
            Frame::Heartbeat { .. } => 6,
            Frame::Shutdown => 7,
            Frame::Bye => 8,
            Frame::DeliverAt { .. } => 9,
            Frame::CompleteAt { .. } => 10,
            Frame::Join { .. } => 11,
            Frame::JoinAck { .. } => 12,
            Frame::JoinRejected { .. } => 13,
        }
    }
}

const MAX_TAG: u8 = 13;

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_params(out: &mut Vec<u8>, params: &TaskParams) {
    put_u32(out, params.len() as u32);
    for p in params.iter() {
        match p {
            ParamValue::Num(x) => {
                out.push(0);
                put_u64(out, x.to_bits());
            }
            ParamValue::Cat(s) => {
                out.push(1);
                put_u32(out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

fn put_buffer(out: &mut Vec<u8>, b: &DataBuffer) {
    put_u64(out, b.id.0);
    put_u64(out, b.task);
    out.push(b.level);
    put_u64(out, b.shape.cpu.as_nanos());
    put_u64(out, b.shape.gpu_kernel.as_nanos());
    put_u64(out, b.shape.bytes_in);
    put_u64(out, b.shape.bytes_out);
    put_params(out, &b.params);
}

fn put_buffers(out: &mut Vec<u8>, bs: &[DataBuffer]) {
    put_u32(out, bs.len() as u32);
    for b in bs {
        put_buffer(out, b);
    }
}

fn kind_byte(k: DeviceKind) -> u8 {
    match k {
        DeviceKind::Cpu => 0,
        DeviceKind::Gpu => 1,
    }
}

/// Open a frame in `out`: write the header with a zero length placeholder
/// and return the offset where the payload begins, so [`close_header`]
/// can backpatch the real length. Encoding straight into the destination
/// buffer avoids the per-frame payload `Vec` the original codec paid.
fn open_header(out: &mut Vec<u8>, tag: u8) -> usize {
    out.push(MAGIC);
    out.push(tag);
    put_u32(out, 0);
    out.len()
}

/// Backpatch the payload length of the frame opened at `payload_start`.
fn close_header(out: &mut [u8], payload_start: usize) {
    let len = out.len() - payload_start;
    assert!(len as u64 <= MAX_FRAME as u64, "frame too large");
    out[payload_start - 4..payload_start].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Serialize one frame, header included, appending to `out`.
///
/// This is the allocation-free core of the codec: nothing is allocated
/// beyond growth of `out` itself, so a caller that reuses one scratch (or
/// pooled) buffer amortizes the allocation across every frame it sends.
/// [`encode_frame`] is the convenience wrapper that pays a fresh `Vec`.
pub fn encode_frame_into(out: &mut Vec<u8>, frame: &Frame) {
    let start = open_header(out, frame.tag());
    match frame {
        Frame::Hello { node, slot } => {
            put_u32(out, *node);
            put_u32(out, *slot);
        }
        Frame::Request { reader, req_id } => {
            put_u32(out, *reader);
            put_u64(out, *req_id);
        }
        Frame::Deliver { kind, buffers } => {
            out.push(kind_byte(*kind));
            put_buffers(out, buffers);
        }
        Frame::Complete {
            buffer,
            proc_ns,
            span,
            recirculated,
        } => {
            put_buffer(out, buffer);
            put_u64(out, *proc_ns);
            put_u64(out, span.start_ns);
            put_u64(out, span.end_ns);
            put_buffers(out, recirculated);
        }
        Frame::BatchDone | Frame::Shutdown | Frame::Bye => {}
        Frame::Heartbeat { seq } => put_u64(out, *seq),
        Frame::DeliverAt {
            filter,
            kind,
            buffers,
        } => {
            put_u32(out, *filter);
            out.push(kind_byte(*kind));
            put_buffers(out, buffers);
        }
        Frame::CompleteAt {
            filter,
            buffer,
            proc_ns,
            span,
            recirculated,
        } => {
            put_u32(out, *filter);
            put_buffer(out, buffer);
            put_u64(out, *proc_ns);
            put_u64(out, span.start_ns);
            put_u64(out, span.end_ns);
            put_buffers(out, recirculated);
        }
        Frame::Join { node, kind } => {
            put_u32(out, *node);
            out.push(kind_byte(*kind));
        }
        Frame::JoinAck { node, slot } => {
            put_u32(out, *node);
            put_u32(out, *slot);
        }
        Frame::JoinRejected { reason } => {
            put_u32(out, reason.len() as u32);
            out.extend_from_slice(reason.as_bytes());
        }
    }
    close_header(out, start);
}

/// Serialize one frame, header included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(&mut out, frame);
    out
}

/// Encode a `Deliver` frame directly from borrowed buffers — the hot
/// dispatch path. Generic over [`Borrow`](std::borrow::Borrow) so drivers
/// whose inflight tables hold `Arc<DataBuffer>` encode from the same
/// allocation they retain, with zero payload clones.
pub fn encode_deliver_into<B: std::borrow::Borrow<DataBuffer>>(
    out: &mut Vec<u8>,
    kind: DeviceKind,
    buffers: &[B],
) {
    let start = open_header(out, 3);
    out.push(kind_byte(kind));
    put_u32(out, buffers.len() as u32);
    for b in buffers {
        put_buffer(out, b.borrow());
    }
    close_header(out, start);
}

/// Encode a `DeliverAt` frame directly from borrowed buffers (graph-mode
/// counterpart of [`encode_deliver_into`]).
pub fn encode_deliver_at_into<B: std::borrow::Borrow<DataBuffer>>(
    out: &mut Vec<u8>,
    filter: u32,
    kind: DeviceKind,
    buffers: &[B],
) {
    let start = open_header(out, 9);
    put_u32(out, filter);
    out.push(kind_byte(kind));
    put_u32(out, buffers.len() as u32);
    for b in buffers {
        put_buffer(out, b.borrow());
    }
    close_header(out, start);
}

/// A bounded free list of encode buffers.
///
/// The event loop encodes every outbound frame into a pooled `Vec<u8>`
/// and returns the vector once the socket has drained it, so a steady
/// run allocates a handful of buffers total instead of one per frame.
/// `hits`/`misses` feed the `allocs_per_frame` metric in `BENCH_net.json`.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    /// Buffers served from the free list.
    pub hits: u64,
    /// Buffers that had to be freshly allocated.
    pub misses: u64,
}

impl BufPool {
    /// Retain at most this many idle buffers.
    const MAX_FREE: usize = 64;
    /// Shrink buffers that ballooned past this before retaining them.
    const MAX_RETAINED_CAPACITY: usize = 256 * 1024;

    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// Take a cleared buffer, reusing a previously returned allocation
    /// when one is idle.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                self.hits += 1;
                b
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a drained buffer to the free list.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() >= Self::MAX_FREE {
            return;
        }
        if buf.capacity() > Self::MAX_RETAINED_CAPACITY {
            buf.shrink_to(Self::MAX_RETAINED_CAPACITY);
        }
        self.free.push(buf);
    }
}

// ---------------------------------------------------------------- decode

/// Cursor over one frame's payload bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() - self.pos < n {
            return Err(FrameError::BadPayload("payload truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn kind(&mut self) -> Result<DeviceKind, FrameError> {
        match self.u8()? {
            0 => Ok(DeviceKind::Cpu),
            1 => Ok(DeviceKind::Gpu),
            _ => Err(FrameError::BadPayload("unknown device kind")),
        }
    }

    fn params(&mut self) -> Result<TaskParams, FrameError> {
        let n = self.u32()? as usize;
        // Each parameter needs at least its kind byte + one length/value
        // field; a hostile count cannot force a large allocation because
        // the whole payload is already bounded by MAX_FRAME.
        if n > self.bytes.len() {
            return Err(FrameError::BadPayload("parameter count exceeds payload"));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            match self.u8()? {
                0 => values.push(ParamValue::Num(f64::from_bits(self.u64()?))),
                1 => {
                    let len = self.u32()? as usize;
                    let raw = self.take(len)?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|_| FrameError::BadPayload("categorical param not UTF-8"))?;
                    values.push(ParamValue::Cat(s.to_owned()));
                }
                _ => return Err(FrameError::BadPayload("unknown param kind")),
            }
        }
        Ok(TaskParams::new(values))
    }

    fn buffer(&mut self) -> Result<DataBuffer, FrameError> {
        let id = BufferId(self.u64()?);
        let task = self.u64()?;
        let level = self.u8()?;
        let shape = TaskShape {
            cpu: SimDuration(self.u64()?),
            gpu_kernel: SimDuration(self.u64()?),
            bytes_in: self.u64()?,
            bytes_out: self.u64()?,
        };
        let params = self.params()?;
        Ok(DataBuffer {
            id,
            params,
            shape,
            level,
            task,
        })
    }

    fn buffers(&mut self) -> Result<Vec<DataBuffer>, FrameError> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() {
            return Err(FrameError::BadPayload("buffer count exceeds payload"));
        }
        (0..n).map(|_| self.buffer()).collect()
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload("trailing bytes after payload"))
        }
    }
}

fn decode_payload(tag: u8, bytes: &[u8]) -> Result<Frame, FrameError> {
    let mut r = Reader { bytes, pos: 0 };
    let frame = match tag {
        1 => Frame::Hello {
            node: r.u32()?,
            slot: r.u32()?,
        },
        2 => Frame::Request {
            reader: r.u32()?,
            req_id: r.u64()?,
        },
        3 => Frame::Deliver {
            kind: r.kind()?,
            buffers: r.buffers()?,
        },
        4 => Frame::Complete {
            buffer: r.buffer()?,
            proc_ns: r.u64()?,
            span: WireSpan {
                start_ns: r.u64()?,
                end_ns: r.u64()?,
            },
            recirculated: r.buffers()?,
        },
        5 => Frame::BatchDone,
        6 => Frame::Heartbeat { seq: r.u64()? },
        7 => Frame::Shutdown,
        8 => Frame::Bye,
        9 => Frame::DeliverAt {
            filter: r.u32()?,
            kind: r.kind()?,
            buffers: r.buffers()?,
        },
        10 => Frame::CompleteAt {
            filter: r.u32()?,
            buffer: r.buffer()?,
            proc_ns: r.u64()?,
            span: WireSpan {
                start_ns: r.u64()?,
                end_ns: r.u64()?,
            },
            recirculated: r.buffers()?,
        },
        11 => Frame::Join {
            node: r.u32()?,
            kind: r.kind()?,
        },
        12 => Frame::JoinAck {
            node: r.u32()?,
            slot: r.u32()?,
        },
        13 => {
            let len = r.u32()? as usize;
            let raw = r.take(len)?;
            let reason = std::str::from_utf8(raw)
                .map_err(|_| FrameError::BadPayload("rejection reason not UTF-8"))?
                .to_owned();
            Frame::JoinRejected { reason }
        }
        t => return Err(FrameError::BadTag(t)),
    };
    r.finish()?;
    Ok(frame)
}

/// Incremental frame decoder: buffer bytes as the socket yields them, pop
/// complete frames as they materialize.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". The header is validated as soon
    /// as its six bytes are present, so corrupt streams fail before their
    /// announced payload is ever awaited. After an `Err` the decoder is
    /// poisoned-by-construction: the caller must drop the connection (the
    /// stream offers no way to resynchronize).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 6 {
            return Ok(None);
        }
        if avail[0] != MAGIC {
            return Err(FrameError::BadMagic(avail[0]));
        }
        let tag = avail[1];
        if tag == 0 || tag > MAX_TAG {
            return Err(FrameError::BadTag(tag));
        }
        let len = u32::from_le_bytes(avail[2..6].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(FrameError::Oversize(len));
        }
        let total = 6 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = decode_payload(tag, &avail[6..total])?;
        self.start += total;
        // Compact once the consumed prefix dominates, keeping the buffer
        // bounded by one partial frame plus whatever was coalesced.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_estimator::params;

    fn buffer(id: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: params![64.0, "variant-a", 3.0],
            shape: TaskShape {
                cpu: SimDuration::from_micros(400),
                gpu_kernel: SimDuration::from_micros(50),
                bytes_in: 3136,
                bytes_out: 256,
            },
            level: 1,
            task: id,
        }
    }

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 0, slot: 3 },
            Frame::Request {
                reader: 2,
                req_id: 77,
            },
            Frame::Deliver {
                kind: DeviceKind::Gpu,
                buffers: vec![buffer(1), buffer(2)],
            },
            Frame::Complete {
                buffer: buffer(1),
                proc_ns: 50_000,
                span: WireSpan {
                    start_ns: 10,
                    end_ns: 60_010,
                },
                recirculated: vec![buffer(9)],
            },
            Frame::BatchDone,
            Frame::Heartbeat { seq: 4 },
            Frame::Shutdown,
            Frame::Bye,
            Frame::DeliverAt {
                filter: 2,
                kind: DeviceKind::Cpu,
                buffers: vec![buffer(3)],
            },
            Frame::CompleteAt {
                filter: 2,
                buffer: buffer(3),
                proc_ns: 400_000,
                span: WireSpan {
                    start_ns: 5,
                    end_ns: 400_005,
                },
                recirculated: vec![],
            },
            Frame::Join {
                node: 1,
                kind: DeviceKind::Gpu,
            },
            Frame::JoinAck { node: 1, slot: 4 },
            Frame::JoinRejected {
                reason: "pool is full".to_owned(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in samples() {
            let bytes = encode_frame(&frame);
            let mut dec = FrameDecoder::new();
            dec.feed(&bytes);
            assert_eq!(dec.next_frame().unwrap(), Some(frame));
            assert_eq!(dec.next_frame().unwrap(), None);
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn coalesced_frames_pop_in_order() {
        let frames = samples();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        for f in &frames {
            assert_eq!(dec.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn one_byte_feeds_reassemble() {
        let frame = Frame::Deliver {
            kind: DeviceKind::Cpu,
            buffers: vec![buffer(5)],
        };
        let bytes = encode_frame(&frame);
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some(frame.clone()));
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected_before_payload() {
        // Wrong magic.
        let mut dec = FrameDecoder::new();
        dec.feed(&[0x00, 1, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(FrameError::BadMagic(0x00)));
        // Unknown tag.
        let mut dec = FrameDecoder::new();
        dec.feed(&[MAGIC, 200, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(FrameError::BadTag(200)));
        // Oversized announced length, rejected with no payload bytes fed.
        let mut dec = FrameDecoder::new();
        let huge = (MAX_FRAME + 1).to_le_bytes();
        dec.feed(&[MAGIC, 1, huge[0], huge[1], huge[2], huge[3]]);
        assert_eq!(dec.next_frame(), Err(FrameError::Oversize(MAX_FRAME + 1)));
    }

    #[test]
    fn truncated_and_padded_payloads_are_rejected() {
        let mut bytes = encode_frame(&Frame::Request {
            reader: 1,
            req_id: 2,
        });
        // Chop one payload byte and shrink the announced length to match:
        // the Request payload is now too short for its fields.
        bytes.pop();
        let new_len = (bytes.len() - 6) as u32;
        bytes[2..6].copy_from_slice(&new_len.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadPayload(_))));

        // Extra trailing byte inside the announced payload.
        let mut bytes = encode_frame(&Frame::Heartbeat { seq: 1 });
        bytes.push(0xFF);
        let new_len = (bytes.len() - 6) as u32;
        bytes[2..6].copy_from_slice(&new_len.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::BadPayload("trailing bytes after payload"))
        );
    }

    #[test]
    fn membership_tags_validate_their_payloads() {
        // The first tag past MAX_TAG rejects at the header.
        let mut dec = FrameDecoder::new();
        dec.feed(&[MAGIC, 14, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(FrameError::BadTag(14)));
        // A rejection reason must be UTF-8.
        let mut bytes = encode_frame(&Frame::JoinRejected {
            reason: "no".to_owned(),
        });
        let n = bytes.len();
        bytes[n - 2] = 0xFE;
        bytes[n - 1] = 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::BadPayload("rejection reason not UTF-8"))
        );
        // A Join with an unknown device kind is rejected.
        let mut bytes = encode_frame(&Frame::Join {
            node: 0,
            kind: DeviceKind::Cpu,
        });
        let n = bytes.len();
        bytes[n - 1] = 9;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::BadPayload("unknown device kind"))
        );
    }

    #[test]
    fn empty_params_and_buffers_encode() {
        let frame = Frame::Deliver {
            kind: DeviceKind::Cpu,
            buffers: vec![DataBuffer {
                id: BufferId(0),
                params: TaskParams::default(),
                shape: TaskShape {
                    cpu: SimDuration::ZERO,
                    gpu_kernel: SimDuration::ZERO,
                    bytes_in: 0,
                    bytes_out: 0,
                },
                level: 0,
                task: 0,
            }],
        };
        let bytes = encode_frame(&frame);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
    }
}
