//! `net::conn` — the per-connection non-blocking state machine used by
//! the event-loop coordinator ([`super::eventloop`]).
//!
//! A [`Conn`] owns one peer's read and write halves:
//!
//! * **Reads** are drained into the connection's [`FrameDecoder`] until
//!   the socket would block; every whole frame is handed to the caller's
//!   sink *before* EOF or a decode error is reported, preserving the
//!   invariant the threaded pump documents (a slot's buffered
//!   completions are observed before its `Closed` marker).
//! * **Writes** are queued as encoded byte buffers and flushed with
//!   vectored writes. Consecutive frames coalesce into the tail buffer
//!   (fewer, larger `writev` calls under load), buffers come from a
//!   shared [`BufPool`] and return to it once drained, and a short write
//!   or `EWOULDBLOCK` mid-frame simply leaves the queue's front offset
//!   where the kernel stopped.
//!
//! The state machine is generic over [`RawIo`] so the proptest suite can
//! drive it with a scripted transport (partial reads, short writes,
//! `EAGAIN` at arbitrary points) without sockets or a poller.

use std::collections::VecDeque;
use std::io::{self, IoSlice};
use std::net::{Shutdown, TcpStream};

use super::frame::{BufPool, Frame, FrameDecoder};

/// Minimal transport surface the connection state machine needs. Implied
/// contract: both methods are non-blocking (`WouldBlock` instead of
/// stalling) when the underlying transport is in non-blocking mode.
pub trait RawIo {
    /// Read into `buf`, returning `Ok(0)` at EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Vectored write; short writes are expected and resumed by the
    /// caller.
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize>;
    /// Tear the transport down in both directions (best effort).
    fn shutdown_both(&mut self);
}

impl RawIo for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        io::Write::write_vectored(self, bufs)
    }

    fn shutdown_both(&mut self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }
}

/// Read-side verdict of one [`Conn::drain_read`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// More bytes may arrive; re-arm read interest.
    Open,
    /// EOF, a fatal read error, or a protocol error. Every frame decoded
    /// before the close has already been pushed to the sink.
    Closed,
}

/// Wire-level counters for one connection (or, aggregated, one run).
/// `pool_hits`/`pool_misses` are filled in by the owner of the shared
/// [`BufPool`]; the per-connection counters track frames and bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    /// Frames accepted into write queues.
    pub tx_frames: u64,
    /// Whole frames decoded off the read side.
    pub rx_frames: u64,
    /// Bytes the kernel accepted across all flushes.
    pub tx_bytes: u64,
    /// Bytes read off the socket.
    pub rx_bytes: u64,
    /// `writev` calls that moved at least one byte.
    pub flushes: u64,
    /// Encode buffers served from the pool's free list.
    pub pool_hits: u64,
    /// Encode buffers that required a fresh allocation.
    pub pool_misses: u64,
}

impl WireStats {
    /// Fold another connection's counters into this aggregate.
    pub fn absorb(&mut self, other: &WireStats) {
        self.tx_frames += other.tx_frames;
        self.rx_frames += other.rx_frames;
        self.tx_bytes += other.tx_bytes;
        self.rx_bytes += other.rx_bytes;
        self.flushes += other.flushes;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }
}

/// Frames appended to one queue buffer before a new one is started;
/// bounds per-buffer growth so pooled buffers stay reusable.
const COALESCE_LIMIT: usize = 32 * 1024;
/// Upper bound on iovecs per `writev`.
const MAX_SLICES: usize = 32;
/// Read chunk size for one `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// One connection's read/write state machine. See the module docs.
pub struct Conn<IO> {
    io: IO,
    dec: FrameDecoder,
    /// Encoded-but-unflushed frames, oldest first. Only the front buffer
    /// can be partially written; `front_offset` marks how much of it the
    /// kernel already took.
    queue: VecDeque<Vec<u8>>,
    front_offset: usize,
    /// Frames accepted for transmission, including any the handshake
    /// wrote while the slot was still blocking.
    frames_sent: u64,
    /// Fault injection: refuse the frame that would exceed this count and
    /// sever once the queue drains, so the peer sees exactly the
    /// scheduled number of frames (same contract as the blocking path).
    sever_after: Option<u64>,
    sever_when_drained: bool,
    write_open: bool,
    read_open: bool,
    /// Wire counters (pool hits/misses live with the shared pool).
    pub stats: WireStats,
}

impl<IO: RawIo> Conn<IO> {
    /// Wrap an established transport. `dec` is the handshake's decoder —
    /// it may hold whole or partial frames read past the handshake reply,
    /// which [`Conn::drain_read`] surfaces before touching the socket.
    /// `frames_sent` carries the handshake's count so `sever_after`
    /// schedules stay frame-accurate across the blocking→non-blocking
    /// transition.
    pub fn new(io: IO, dec: FrameDecoder, sever_after: Option<u64>, frames_sent: u64) -> Conn<IO> {
        Conn {
            io,
            dec,
            queue: VecDeque::new(),
            front_offset: 0,
            frames_sent,
            sever_after,
            sever_when_drained: false,
            write_open: true,
            read_open: true,
            stats: WireStats::default(),
        }
    }

    /// The underlying transport (used by the reactor for socket-mode
    /// toggles at graceful shutdown).
    pub fn io_mut(&mut self) -> &mut IO {
        &mut self.io
    }

    /// Is the write side still usable? Mirrors the blocking path's
    /// `SlotIo::open`: cleared by a write failure or a sever, after which
    /// the reap path hands the slot to `Engine::worker_died`.
    pub fn write_open(&self) -> bool {
        self.write_open
    }

    /// Is the read side still open?
    pub fn read_open(&self) -> bool {
        self.read_open
    }

    /// Does the connection have queued bytes waiting for the socket to
    /// become writable?
    pub fn wants_write(&self) -> bool {
        self.write_open && !self.queue.is_empty()
    }

    /// Queue one frame for transmission without flushing. The frame is
    /// encoded straight into the tail queue buffer (coalescing) or a
    /// pooled buffer — no intermediate allocation. Respects the sever
    /// schedule; failures are reported via [`Conn::write_open`], never as
    /// errors (the reap path owns the consequence).
    pub fn enqueue_with(&mut self, pool: &mut BufPool, encode: impl FnOnce(&mut Vec<u8>)) {
        if !self.write_open || self.sever_when_drained {
            return;
        }
        if let Some(limit) = self.sever_after {
            if self.frames_sent >= limit {
                self.sever_when_drained = true;
                if self.queue.is_empty() {
                    self.sever(pool);
                }
                return;
            }
        }
        match self.queue.back_mut() {
            Some(tail) if tail.len() < COALESCE_LIMIT => encode(tail),
            _ => {
                let mut buf = pool.get();
                encode(&mut buf);
                self.queue.push_back(buf);
            }
        }
        self.frames_sent += 1;
        self.stats.tx_frames += 1;
    }

    /// [`Conn::enqueue_with`] for a pre-built frame.
    pub fn enqueue(&mut self, frame: &Frame, pool: &mut BufPool) {
        self.enqueue_with(pool, |out| super::frame::encode_frame_into(out, frame));
    }

    /// Push queued bytes at the socket until it would block, the queue is
    /// empty, or the write fails (which closes the connection). Drained
    /// buffers return to the pool.
    pub fn try_flush(&mut self, pool: &mut BufPool) {
        if !self.write_open {
            self.release_queue(pool);
            return;
        }
        while !self.queue.is_empty() {
            let mut slices = [IoSlice::new(&[]); MAX_SLICES];
            let mut n = 0;
            for (i, buf) in self.queue.iter().take(MAX_SLICES).enumerate() {
                let from = if i == 0 { self.front_offset } else { 0 };
                slices[n] = IoSlice::new(&buf[from..]);
                n += 1;
            }
            match self.io.write_vectored(&slices[..n]) {
                Ok(0) => {
                    self.fail_write(pool);
                    return;
                }
                Ok(written) => {
                    self.stats.tx_bytes += written as u64;
                    self.stats.flushes += 1;
                    self.advance(written, pool);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.fail_write(pool);
                    return;
                }
            }
        }
        if self.sever_when_drained {
            self.sever(pool);
        }
    }

    /// Account `written` bytes against the queue front.
    fn advance(&mut self, mut written: usize, pool: &mut BufPool) {
        while written > 0 {
            let front_len = self.queue.front().expect("advance past queue end").len();
            let remaining = front_len - self.front_offset;
            if written >= remaining {
                written -= remaining;
                self.front_offset = 0;
                pool.put(self.queue.pop_front().expect("front exists"));
            } else {
                self.front_offset += written;
                written = 0;
            }
        }
    }

    fn fail_write(&mut self, pool: &mut BufPool) {
        self.io.shutdown_both();
        self.write_open = false;
        self.release_queue(pool);
    }

    /// Tear the connection down in both directions (kill/sever path).
    pub fn sever(&mut self, pool: &mut BufPool) {
        self.io.shutdown_both();
        self.write_open = false;
        self.read_open = false;
        self.release_queue(pool);
    }

    fn release_queue(&mut self, pool: &mut BufPool) {
        self.front_offset = 0;
        for buf in self.queue.drain(..) {
            pool.put(buf);
        }
    }

    /// Decode every complete frame already buffered in the decoder into
    /// `sink`. `Closed` means the stream desynchronized (decode error).
    fn decode_all(&mut self, sink: &mut Vec<Frame>) -> ReadStatus {
        loop {
            match self.dec.next_frame() {
                Ok(Some(f)) => {
                    self.stats.rx_frames += 1;
                    sink.push(f);
                }
                Ok(None) => return ReadStatus::Open,
                Err(_) => {
                    self.read_open = false;
                    return ReadStatus::Closed;
                }
            }
        }
    }

    /// Drain the read side: surface buffered frames, then read until the
    /// socket is drained (short read), would block, hits EOF, or errors.
    /// Frames are pushed to `sink` in wire order; on `Closed`, every
    /// frame that preceded the close has already been pushed. Under
    /// level-triggered readiness a short read ends the call early — the
    /// poller re-reports the socket if more bytes arrive.
    pub fn drain_read(&mut self, sink: &mut Vec<Frame>) -> ReadStatus {
        if !self.read_open {
            return ReadStatus::Closed;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if self.decode_all(sink) == ReadStatus::Closed {
                return ReadStatus::Closed;
            }
            match self.io.read(&mut chunk) {
                Ok(0) => {
                    self.read_open = false;
                    return ReadStatus::Closed;
                }
                Ok(n) => {
                    self.stats.rx_bytes += n as u64;
                    self.dec.feed(&chunk[..n]);
                    // A short read means the socket buffer is drained: skip
                    // the follow-up read that would only return WouldBlock.
                    // Safe under level-triggered readiness — bytes landing
                    // after this read re-report on the next poll — and it
                    // halves read syscalls in ping-pong traffic. (Decode of
                    // the fed bytes still runs: the inner loop comes first.)
                    if n < READ_CHUNK {
                        let status = self.decode_all(sink);
                        return status;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStatus::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_open = false;
                    return ReadStatus::Closed;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::frame::{encode_frame, Frame};

    /// Scripted transport: reads follow a step list, writes are captured
    /// with a per-call byte cap so short writes and `EAGAIN` land at
    /// chosen points.
    #[derive(Default)]
    struct ScriptedIo {
        reads: VecDeque<ReadStep>,
        write_steps: VecDeque<WriteStep>,
        wrote: Vec<u8>,
        writev_calls: u32,
        shutdowns: u32,
    }

    enum ReadStep {
        Data(Vec<u8>),
        Block,
        Eof,
    }

    enum WriteStep {
        Accept(usize),
        Block,
    }

    impl RawIo for ScriptedIo {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(ReadStep::Data(d)) => {
                    let n = d.len().min(buf.len());
                    buf[..n].copy_from_slice(&d[..n]);
                    if n < d.len() {
                        self.reads.push_front(ReadStep::Data(d[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(ReadStep::Block) | None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(ReadStep::Eof) => Ok(0),
            }
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.writev_calls += 1;
            let cap = match self.write_steps.pop_front() {
                Some(WriteStep::Accept(n)) => n,
                Some(WriteStep::Block) => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
                None => usize::MAX,
            };
            let mut taken = 0;
            for b in bufs {
                if taken == cap {
                    break;
                }
                let n = b.len().min(cap - taken);
                self.wrote.extend_from_slice(&b[..n]);
                taken += n;
                if n < b.len() {
                    break;
                }
            }
            Ok(taken)
        }

        fn shutdown_both(&mut self) {
            self.shutdowns += 1;
        }
    }

    fn hb(seq: u64) -> Frame {
        Frame::Heartbeat { seq }
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        dec.feed(bytes);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().expect("valid wire bytes") {
            out.push(f);
        }
        out
    }

    #[test]
    fn short_writes_and_eagain_reassemble_in_order() {
        let mut io = ScriptedIo::default();
        // First flush takes 3 bytes (mid-header), then EAGAIN, then all.
        io.write_steps.push_back(WriteStep::Accept(3));
        io.write_steps.push_back(WriteStep::Block);
        let mut conn = Conn::new(io, FrameDecoder::new(), None, 0);
        let mut pool = BufPool::new();
        for seq in 0..5 {
            conn.enqueue(&hb(seq), &mut pool);
        }
        conn.try_flush(&mut pool);
        assert!(conn.wants_write(), "EAGAIN must leave bytes queued");
        conn.try_flush(&mut pool);
        assert!(!conn.wants_write());
        let frames = decode_all(&conn.io.wrote);
        assert_eq!(frames, (0..5).map(hb).collect::<Vec<_>>());
    }

    #[test]
    fn coalescing_batches_frames_into_one_buffer() {
        let mut conn = Conn::new(ScriptedIo::default(), FrameDecoder::new(), None, 0);
        let mut pool = BufPool::new();
        for seq in 0..10 {
            conn.enqueue(&hb(seq), &mut pool);
        }
        assert_eq!(conn.queue.len(), 1, "small frames coalesce into the tail");
        conn.try_flush(&mut pool);
        assert_eq!(conn.io.writev_calls, 1);
        assert_eq!(decode_all(&conn.io.wrote).len(), 10);
        // The drained buffer went back to the pool and is reused.
        conn.enqueue(&hb(99), &mut pool);
        assert_eq!(pool.hits, 1);
    }

    #[test]
    fn sever_after_delivers_exactly_the_scheduled_frames() {
        let mut conn = Conn::new(ScriptedIo::default(), FrameDecoder::new(), None, 0);
        conn.sever_after = Some(3);
        let mut pool = BufPool::new();
        for seq in 0..6 {
            conn.enqueue(&hb(seq), &mut pool);
            conn.try_flush(&mut pool);
        }
        assert!(!conn.write_open());
        assert_eq!(conn.io.shutdowns, 1);
        assert_eq!(decode_all(&conn.io.wrote).len(), 3);
    }

    #[test]
    fn one_byte_reads_surface_frames_in_order_then_eof_last() {
        let mut io = ScriptedIo::default();
        let mut wire = Vec::new();
        for seq in 0..4 {
            wire.extend_from_slice(&encode_frame(&hb(seq)));
        }
        for (i, b) in wire.into_iter().enumerate() {
            io.reads.push_back(ReadStep::Data(vec![b]));
            if i == 20 {
                // EAGAIN mid-frame: the decoder must resume where it was.
                io.reads.push_back(ReadStep::Block);
            }
        }
        io.reads.push_back(ReadStep::Eof);
        let mut conn = Conn::new(io, FrameDecoder::new(), None, 0);
        // Every short read returns `Open` (level-triggered readiness
        // re-reports the remaining bytes); re-polling must resume the
        // decoder mid-frame and surface EOF last.
        let mut sink = Vec::new();
        let mut polls = 0;
        while conn.drain_read(&mut sink) == ReadStatus::Open {
            polls += 1;
            assert!(polls < 1000, "drain_read never reached EOF");
        }
        assert_eq!(sink, (0..4).map(hb).collect::<Vec<_>>());
    }

    #[test]
    fn handshake_buffered_frames_surface_before_any_read() {
        // The decoder already holds a frame the handshake read past its
        // own reply; it must come out even though the socket only blocks.
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_frame(&hb(7)));
        let mut conn = Conn::new(ScriptedIo::default(), dec, None, 0);
        let mut sink = Vec::new();
        assert_eq!(conn.drain_read(&mut sink), ReadStatus::Open);
        assert_eq!(sink, vec![hb(7)]);
    }

    #[test]
    fn write_failure_closes_and_releases_queue_to_pool() {
        struct FailIo;
        impl RawIo for FailIo {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
            fn write_vectored(&mut self, _: &[IoSlice<'_>]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::BrokenPipe))
            }
            fn shutdown_both(&mut self) {}
        }
        let mut conn = Conn::new(FailIo, FrameDecoder::new(), None, 0);
        let mut pool = BufPool::new();
        conn.enqueue(&hb(0), &mut pool);
        conn.try_flush(&mut pool);
        assert!(!conn.write_open());
        assert!(!conn.wants_write());
        conn.enqueue(&hb(1), &mut pool);
        assert_eq!(conn.stats.tx_frames, 1, "closed conn accepts no frames");
        let _ = pool.get();
        assert_eq!(pool.hits, 1, "queued buffer was recycled into the pool");
    }
}
