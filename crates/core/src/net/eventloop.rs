//! `net::eventloop` — the readiness-based reactor behind the concurrent
//! coordinator's `NetPath::EventLoop` mode.
//!
//! One [`Reactor`] replaces the thread-per-socket pump: every worker
//! connection is a non-blocking [`Conn`] registered with the
//! [`anthill_poller::Poller`] shim, the elastic listener registers
//! alongside them, and one `wait` call multiplexes all of it on the
//! coordinator thread. The reactor surfaces the exact same [`Pump`]
//! events the reader threads used to send over the mpsc channel, so the
//! three concurrent run loops (`run_concurrent`, `run_concurrent_load`,
//! `run_concurrent_elastic`) are byte-for-byte identical above this seam
//! — timers, heartbeat-silence checks, membership joins, and reaps all
//! keep their existing call sites.
//!
//! Ordering contract (inherited from the threaded pump): a slot's
//! decoded frames are always surfaced before its [`Pump::Closed`]
//! marker, and `Closed` fires at most once per slot.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

use anthill_poller::{Event, Interest, Poller};

use crate::buffer::DataBuffer;
use anthill_hetsim::DeviceKind;

use super::conn::{Conn, ReadStatus, WireStats};
use super::frame::{encode_deliver_into, encode_frame_into, BufPool, Frame, FrameDecoder};

/// One unit of work for the concurrent run loops, produced either by the
/// reader threads (`NetPath::Threads`) or by the [`Reactor`]
/// (`NetPath::EventLoop`).
pub(crate) enum Pump {
    /// A decoded frame from a worker connection.
    Frame(usize, Frame),
    /// The worker's connection reached EOF or failed.
    Closed(usize),
    /// A freshly accepted connection from the elastic listener, first
    /// frame not yet read (a valid peer sends `Join` immediately).
    Incoming(TcpStream),
}

/// Poller token reserved for the elastic listener.
const LISTENER_TOKEN: usize = usize::MAX;

/// The event-loop coordinator core: poller, per-slot connections, the
/// shared encode-buffer pool, and the queue of surfaced [`Pump`] events.
pub(crate) struct Reactor {
    poller: Poller,
    conns: Vec<Option<Conn<TcpStream>>>,
    /// `Closed` already surfaced for this slot (fire-once contract).
    closed_emitted: Vec<bool>,
    listener: Option<TcpListener>,
    pool: BufPool,
    ready: VecDeque<Pump>,
    /// Reused scratch for `Poller::wait`.
    events: Vec<Event>,
    /// Reused scratch for `Conn::drain_read`.
    sink: Vec<Frame>,
    /// Slots with enqueued-but-unflushed frames. Sends only queue;
    /// [`Reactor::pump`] flushes the dirty set right before blocking in
    /// the poller, so every frame generated while the ready queue drains
    /// coalesces into one `writev` per connection.
    dirty: Vec<usize>,
    is_dirty: Vec<bool>,
    /// Interest currently armed with the poller, per slot (`None` once
    /// deregistered). Skips redundant `reregister` syscalls.
    armed: Vec<Option<Interest>>,
    /// Counters folded in from retired connections.
    retired: WireStats,
}

impl Reactor {
    pub fn new() -> io::Result<Reactor> {
        Ok(Reactor {
            poller: Poller::new()?,
            conns: Vec::new(),
            closed_emitted: Vec::new(),
            listener: None,
            pool: BufPool::new(),
            ready: VecDeque::new(),
            events: Vec::new(),
            sink: Vec::new(),
            dirty: Vec::new(),
            is_dirty: Vec::new(),
            armed: Vec::new(),
            retired: WireStats::default(),
        })
    }

    /// Number of slots ever registered (dead slots keep their index).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Register an established, handshaken connection as slot
    /// `self.len()`. `dec` carries the handshake's decoder state and
    /// `frames_sent` its write count (see [`Conn::new`]); any frames the
    /// handshake buffered whole are surfaced immediately.
    pub fn register(
        &mut self,
        stream: TcpStream,
        dec: FrameDecoder,
        sever_after: Option<u64>,
        frames_sent: u64,
    ) -> io::Result<usize> {
        let slot = self.conns.len();
        stream.set_nonblocking(true)?;
        self.poller
            .register(stream.as_raw_fd(), slot, Interest::READ)?;
        self.conns
            .push(Some(Conn::new(stream, dec, sever_after, frames_sent)));
        self.closed_emitted.push(false);
        self.is_dirty.push(false);
        self.armed.push(Some(Interest::READ));
        // Handshake-buffered frames must not wait for socket readability.
        self.service(slot, true, false);
        Ok(slot)
    }

    /// Register the elastic listener; accepted connections surface as
    /// [`Pump::Incoming`] with the stream switched back to blocking mode
    /// for the brief join handshake (the admit path re-registers it
    /// non-blocking via [`Reactor::register`]).
    pub fn attach_listener(&mut self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        self.listener = Some(listener);
        Ok(())
    }

    /// Is the slot's write side still usable? (Mirrors `SlotIo::open`.)
    pub fn open(&self, slot: usize) -> bool {
        self.conns
            .get(slot)
            .and_then(|c| c.as_ref())
            .map(|c| c.write_open())
            .unwrap_or(false)
    }

    /// Queue one frame on `slot`; the bytes leave at the next
    /// [`Reactor::pump`] wait boundary (or sooner on writable readiness).
    pub fn send(&mut self, slot: usize, frame: &Frame) {
        self.send_with(slot, |out| encode_frame_into(out, frame));
    }

    /// Queue a `Deliver` frame encoded straight from the shared
    /// `Arc<DataBuffer>`s the inflight table retains — no payload clone.
    pub fn send_deliver(&mut self, slot: usize, kind: DeviceKind, buffers: &[Arc<DataBuffer>]) {
        self.send_with(slot, |out| encode_deliver_into(out, kind, buffers));
    }

    fn send_with(&mut self, slot: usize, encode: impl FnOnce(&mut Vec<u8>)) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        conn.enqueue_with(&mut self.pool, encode);
        if !conn.wants_write() {
            return;
        }
        if self.is_dirty[slot] {
            // Already waiting out backpressure; the new frame coalesced
            // into the queue and leaves with the next flush.
            return;
        }
        // Latency path: push the frame at the socket now so the worker
        // wakes immediately. A short write or EAGAIN parks the slot on
        // the dirty list; from then on frames coalesce until the flush
        // boundary (or writable readiness) drains it.
        conn.try_flush(&mut self.pool);
        if conn.wants_write() {
            self.is_dirty[slot] = true;
            self.dirty.push(slot);
            self.update_interest(slot);
        }
    }

    /// Flush every dirty connection. Called at the wait boundary so each
    /// burst of sends becomes at most one vectored write per peer; a
    /// socket that pushes back stays armed for writable readiness.
    fn flush_dirty(&mut self) {
        while let Some(slot) = self.dirty.pop() {
            self.is_dirty[slot] = false;
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                continue;
            };
            conn.try_flush(&mut self.pool);
            self.update_interest(slot);
        }
    }

    /// Tear down a slot in both directions (kill/sever path). Late
    /// events for the slot are dropped; its counters are retained.
    pub fn sever(&mut self, slot: usize) {
        if let Some(Some(conn)) = self.conns.get_mut(slot) {
            conn.sever(&mut self.pool);
        }
        self.retire(slot);
    }

    /// Graceful close for a drained slot: flush the queue in blocking
    /// mode, send `Shutdown`, and half-close the write side. The slot is
    /// retired — the drained worker's `Bye`/EOF needs no further events.
    pub fn graceful_close(&mut self, slot: usize) {
        if let Some(Some(conn)) = self.conns.get_mut(slot) {
            if conn.write_open() {
                conn.io_mut().set_nonblocking(false).ok();
                conn.enqueue(&Frame::Shutdown, &mut self.pool);
                conn.try_flush(&mut self.pool);
                let _ = conn.io_mut().shutdown(std::net::Shutdown::Write);
            }
        }
        self.retire(slot);
    }

    /// Deregister and drop a slot's connection, folding its counters into
    /// the run aggregate.
    fn retire(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            if let Some(conn) = entry.take() {
                if self.armed[slot].take().is_some() {
                    self.poller.deregister(slot);
                }
                self.retired.absorb(&conn.stats);
            }
        }
    }

    /// Wire counters for the whole run so far: retired connections plus
    /// everything still live, plus the shared pool's hit/miss counts.
    pub fn stats(&self) -> WireStats {
        let mut total = self.retired;
        for conn in self.conns.iter().flatten() {
            total.absorb(&conn.stats);
        }
        total.pool_hits = self.pool.hits;
        total.pool_misses = self.pool.misses;
        total
    }

    /// Surface the next [`Pump`] event, polling the OS for at most
    /// `wait`. `None` means the timeout elapsed with nothing to do —
    /// exactly like `recv_timeout`'s `Timeout` arm on the threaded path.
    pub fn pump(&mut self, wait: Duration) -> Option<Pump> {
        if let Some(ev) = self.ready.pop_front() {
            return Some(ev);
        }
        self.flush_dirty();
        let mut events = std::mem::take(&mut self.events);
        if self.poller.wait(&mut events, Some(wait)).is_err() {
            self.events = events;
            return None;
        }
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                Self::accept_ready(&self.listener, &mut self.ready);
            } else {
                self.service(ev.token, ev.readable || ev.hangup, ev.writable);
            }
        }
        self.events = events;
        self.ready.pop_front()
    }

    fn accept_ready(listener: &Option<TcpListener>, ready: &mut VecDeque<Pump>) {
        let Some(listener) = listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // The join handshake runs blocking on the main loop,
                    // as it does on the threaded path.
                    stream.set_nonblocking(false).ok();
                    ready.push_back(Pump::Incoming(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Run one slot's state machine for the given readiness, queueing
    /// surfaced frames / closure onto `ready`.
    fn service(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        if writable {
            conn.try_flush(&mut self.pool);
        }
        let mut closed = false;
        if readable {
            self.sink.clear();
            let status = conn.drain_read(&mut self.sink);
            for f in self.sink.drain(..) {
                self.ready.push_back(Pump::Frame(slot, f));
            }
            closed = status == ReadStatus::Closed;
        }
        if closed && !self.closed_emitted[slot] {
            self.closed_emitted[slot] = true;
            self.ready.push_back(Pump::Closed(slot));
            self.retire(slot);
            return;
        }
        self.update_interest(slot);
    }

    /// Re-arm the poller for what the slot currently needs; deregisters
    /// a connection that can make no further progress. No syscall when
    /// the armed interest already matches.
    fn update_interest(&mut self, slot: usize) {
        let Some(Some(conn)) = self.conns.get(slot) else {
            return;
        };
        let interest = Interest {
            readable: conn.read_open(),
            writable: conn.wants_write(),
        };
        if !interest.readable && !interest.writable {
            // Write side failed or severed and reads are done: the reap
            // path (`!open`) owns the slot from here.
            if self.armed[slot].take().is_some() {
                self.poller.deregister(slot);
            }
            return;
        }
        if self.armed[slot] != Some(interest) && self.poller.reregister(slot, interest).is_ok() {
            self.armed[slot] = Some(interest);
        }
    }

    /// Gracefully close every remaining slot (run teardown).
    pub fn shutdown_all(&mut self) {
        for slot in 0..self.conns.len() {
            self.graceful_close(slot);
        }
    }
}
