//! Worker-process side of the networked backend.
//!
//! A worker is deliberately dumb: it owns no scheduling state. It connects
//! to the coordinator, learns its `(node, slot)` identity from the `Hello`
//! handshake, and then serves a simple request/response loop:
//!
//! * `Request` frames are echoed back — the demand path is
//!   coordinator→worker→coordinator so that the real socket round-trip is
//!   exercised on every window refill, exactly where Anthill's labeled
//!   stream messages would travel.
//! * `Deliver` frames are executed buffer-by-buffer: the worker measures a
//!   wall-clock span, derives the modeled device occupancy from the
//!   buffer's [`TaskShape`](anthill_hetsim::TaskShape) and the delivered
//!   device kind, applies its [`Behavior`] (identity forwarding,
//!   recirculation, or busy-spinning), and answers with one `Complete` per
//!   buffer followed by `BatchDone`.
//! * `Shutdown` is answered with `Bye` and a clean exit.
//!
//! When the socket is idle past the read timeout the worker emits a
//! `Heartbeat` so the coordinator can distinguish "slow" from "dead".

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use anthill_hetsim::DeviceKind;

use crate::buffer::DataBuffer;

use super::frame::{encode_frame, encode_frame_into, Frame, FrameDecoder, WireSpan};

/// What a worker does with each delivered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Execute and forward: no recirculation (one task per buffer).
    Identity,
    /// Recirculate each buffer with `level + 1` until it has lived
    /// `rounds` levels, mirroring the multi-round test filters.
    Recirc {
        /// Total number of levels a buffer passes through.
        rounds: u8,
    },
    /// Spin for roughly this many microseconds of wall time per buffer
    /// before completing — gives chaos runs a window to kill the process
    /// while work is genuinely in flight.
    Busy {
        /// Busy-spin duration per buffer, microseconds.
        micros: u64,
    },
}

impl Behavior {
    /// Parse the CLI spelling used by the hidden `worker` subcommand:
    /// `identity`, `recirc:N`, or `busy:N`.
    pub fn parse(s: &str) -> Option<Behavior> {
        if s == "identity" {
            return Some(Behavior::Identity);
        }
        if let Some(n) = s.strip_prefix("recirc:") {
            return n.parse().ok().map(|rounds| Behavior::Recirc { rounds });
        }
        if let Some(n) = s.strip_prefix("busy:") {
            return n.parse().ok().map(|micros| Behavior::Busy { micros });
        }
        None
    }

    fn apply(&self, buffer: &DataBuffer) -> Vec<DataBuffer> {
        match *self {
            Behavior::Identity => Vec::new(),
            Behavior::Recirc { rounds } => {
                if buffer.level + 1 < rounds {
                    let mut next = buffer.clone();
                    next.level += 1;
                    vec![next]
                } else {
                    Vec::new()
                }
            }
            Behavior::Busy { micros } => {
                let until = Instant::now() + Duration::from_micros(micros);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
                Vec::new()
            }
        }
    }
}

/// Modeled device occupancy for `buffer` on a device of `kind` — the same
/// number every other backend charges, so completion accounting matches.
pub fn modeled_proc_ns(buffer: &DataBuffer, kind: DeviceKind) -> u64 {
    match kind {
        DeviceKind::Cpu => buffer.shape.cpu.as_nanos(),
        DeviceKind::Gpu => buffer.shape.gpu_kernel.as_nanos(),
    }
}

/// Encode `frame` into the caller's scratch buffer and write it out; the
/// scratch is reused across the serve loop so steady-state sends do not
/// allocate.
fn send_with(stream: &mut TcpStream, frame: &Frame, scratch: &mut Vec<u8>) -> std::io::Result<()> {
    scratch.clear();
    encode_frame_into(scratch, frame);
    stream.write_all(scratch)
}

/// One-shot send for paths without a long-lived scratch (handshakes).
fn send(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&encode_frame(frame))
}

/// Serve the worker loop on an established connection until `Shutdown`
/// arrives or the coordinator hangs up. Returns the number of buffers
/// executed.
pub fn run_worker(stream: TcpStream, behavior: Behavior) -> std::io::Result<u64> {
    run_worker_primed(stream, behavior, FrameDecoder::new())
}

/// [`run_worker`] with a pre-primed decoder. A handshake that read past
/// its own reply (TCP delivers whatever the coordinator has written —
/// `JoinAck`, the join pump's `Request`s, even an immediate `Deliver`
/// can arrive coalesced in one segment) hands its decoder here so no
/// buffered frame is lost between the handshake and the serve loop.
pub fn run_worker_primed(
    mut stream: TcpStream,
    behavior: Behavior,
    mut dec: FrameDecoder,
) -> std::io::Result<u64> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let epoch = Instant::now();
    let mut chunk = [0u8; 64 * 1024];
    let mut scratch = Vec::new();
    let mut executed = 0u64;
    let mut heartbeat_seq = 0u64;
    loop {
        // Drain every complete frame already buffered before reading more.
        // Replies accumulate in `scratch` and flush as ONE write per
        // wakeup: a read that delivered a Request and a Deliver coalesced
        // answers with the echo, the batch's Completes, and BatchDone in a
        // single TCP segment — one coordinator wakeup instead of one per
        // reply frame.
        scratch.clear();
        while let Some(frame) = dec
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            match frame {
                Frame::Hello { .. } => encode_frame_into(&mut scratch, &frame),
                Frame::Request { .. } => encode_frame_into(&mut scratch, &frame),
                Frame::Deliver { kind, buffers } => {
                    for buffer in buffers {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        let recirculated = behavior.apply(&buffer);
                        let end_ns = epoch.elapsed().as_nanos() as u64;
                        executed += 1;
                        encode_frame_into(
                            &mut scratch,
                            &Frame::Complete {
                                proc_ns: modeled_proc_ns(&buffer, kind),
                                buffer,
                                span: WireSpan { start_ns, end_ns },
                                recirculated,
                            },
                        );
                    }
                    encode_frame_into(&mut scratch, &Frame::BatchDone);
                }
                Frame::DeliverAt {
                    filter,
                    kind,
                    buffers,
                } => {
                    // Graph runs: same execution loop as `Deliver`, but the
                    // filter id rides along unchanged so the coordinator can
                    // route the completion — the worker stays stateless.
                    for buffer in buffers {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        let recirculated = behavior.apply(&buffer);
                        let end_ns = epoch.elapsed().as_nanos() as u64;
                        executed += 1;
                        encode_frame_into(
                            &mut scratch,
                            &Frame::CompleteAt {
                                filter,
                                proc_ns: modeled_proc_ns(&buffer, kind),
                                buffer,
                                span: WireSpan { start_ns, end_ns },
                                recirculated,
                            },
                        );
                    }
                    encode_frame_into(&mut scratch, &Frame::BatchDone);
                }
                Frame::Shutdown => {
                    encode_frame_into(&mut scratch, &Frame::Bye);
                    stream.write_all(&scratch).ok();
                    return Ok(executed);
                }
                // A late JoinAck (the join path answers it before handing
                // the stream to this loop) is harmless; tolerate it.
                Frame::JoinAck { .. } => {}
                // Coordinator never sends these; tolerate them.
                Frame::Complete { .. }
                | Frame::CompleteAt { .. }
                | Frame::BatchDone
                | Frame::Heartbeat { .. }
                | Frame::Join { .. }
                | Frame::JoinRejected { .. }
                | Frame::Bye => {}
            }
        }
        if !scratch.is_empty() {
            stream.write_all(&scratch)?;
            scratch.clear();
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(executed), // coordinator hung up
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                heartbeat_seq += 1;
                send_with(
                    &mut stream,
                    &Frame::Heartbeat { seq: heartbeat_seq },
                    &mut scratch,
                )?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Connect to `addr` and serve [`run_worker`] — the body of the hidden
/// `worker` subcommand in the `repro` binary.
pub fn connect_and_run(addr: &str, behavior: Behavior) -> std::io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    run_worker(stream, behavior)
}

/// Mid-run join handshake, worker side: send `Join { node, kind }` as the
/// connection's very first frame and await the coordinator's verdict.
/// Returns the assigned `(node, slot)` on `JoinAck`; a typed
/// `JoinRejected` maps to [`std::io::ErrorKind::ConnectionRefused`] with
/// the coordinator's reason as the message, so callers can tell "refused"
/// from "crashed".
///
/// `dec` is the connection's frame decoder and MUST be carried into the
/// serve loop afterwards (see [`run_worker_primed`]): the coordinator
/// pumps demand the instant it installs the slot, so the read that
/// returns `JoinAck` routinely also returns the first `Request`s — and,
/// when the ready queue is non-empty at join time, a `Deliver`. A
/// handshake with a private decoder would silently eat those frames,
/// stranding the delivered buffer forever (the coordinator retries
/// requests, but never re-sends a dispatched batch to a live slot).
pub fn join_handshake(
    stream: &mut TcpStream,
    node: usize,
    kind: DeviceKind,
    dec: &mut FrameDecoder,
) -> std::io::Result<(u32, u32)> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    send(
        stream,
        &Frame::Join {
            node: node as u32,
            kind,
        },
    )?;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = dec
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            match frame {
                Frame::JoinAck { node, slot } => {
                    stream.set_read_timeout(None).ok();
                    return Ok((node, slot));
                }
                Frame::JoinRejected { reason } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        reason,
                    ));
                }
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected reply to Join: {other:?}"),
                    ));
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "coordinator hung up during join",
                ));
            }
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Connect to `addr`, complete the [`join_handshake`], then serve
/// [`run_worker`] — the elastic entry point of the hidden `worker`
/// subcommand (`--join node:kind`).
pub fn join_and_run(
    addr: &str,
    node: usize,
    kind: DeviceKind,
    behavior: Behavior,
) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    let mut dec = FrameDecoder::new();
    join_handshake(&mut stream, node, kind, &mut dec)?;
    run_worker_primed(stream, behavior, dec)
}

/// Spawn an in-process thread that joins the live run at `addr` and then
/// serves `behavior` — the loopback counterpart of [`join_and_run`].
pub fn spawn_joining_worker_thread(
    addr: String,
    node: usize,
    kind: DeviceKind,
    behavior: Behavior,
) -> std::thread::JoinHandle<std::io::Result<u64>> {
    std::thread::Builder::new()
        .name("anthill-net-joiner".into())
        .spawn(move || join_and_run(&addr, node, kind, behavior))
        .expect("spawn joining worker thread")
}

/// Spawn an in-process worker thread serving `behavior` over `stream`.
/// Loopback tests use this where a full child process would only add
/// startup latency; the protocol exercised is byte-identical.
pub fn spawn_worker_thread(
    stream: TcpStream,
    behavior: Behavior,
) -> std::thread::JoinHandle<std::io::Result<u64>> {
    std::thread::Builder::new()
        .name("anthill-net-worker".into())
        .spawn(move || run_worker(stream, behavior))
        .expect("spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_parses_cli_spellings() {
        assert_eq!(Behavior::parse("identity"), Some(Behavior::Identity));
        assert_eq!(
            Behavior::parse("recirc:3"),
            Some(Behavior::Recirc { rounds: 3 })
        );
        assert_eq!(
            Behavior::parse("busy:250"),
            Some(Behavior::Busy { micros: 250 })
        );
        assert_eq!(Behavior::parse("bogus"), None);
        assert_eq!(Behavior::parse("recirc:x"), None);
    }

    #[test]
    fn recirc_stops_at_round_limit() {
        use anthill_estimator::TaskParams;
        use anthill_hetsim::TaskShape;
        use anthill_simkit::SimDuration;
        let b = DataBuffer {
            id: crate::buffer::BufferId(1),
            params: TaskParams::default(),
            shape: TaskShape {
                cpu: SimDuration::ZERO,
                gpu_kernel: SimDuration::ZERO,
                bytes_in: 0,
                bytes_out: 0,
            },
            level: 0,
            task: 1,
        };
        let behavior = Behavior::Recirc { rounds: 2 };
        let next = behavior.apply(&b);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].level, 1);
        assert!(behavior.apply(&next[0]).is_empty());
    }

    /// Regression: the join handshake's read can pull coalesced frames —
    /// the join pump's `Request`s, even a `Deliver` — in the same segment
    /// as the `JoinAck`. The serve loop must consume the handshake's
    /// decoder, not start fresh, or those frames vanish and the delivered
    /// buffer strands in flight forever (observed as a rolling-restart
    /// stall at n-1/n completions).
    #[test]
    fn primed_decoder_frames_are_served_before_any_socket_read() {
        use anthill_estimator::TaskParams;
        use anthill_hetsim::TaskShape;
        use anthill_simkit::SimDuration;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let buffer = DataBuffer {
            id: crate::buffer::BufferId(7),
            params: TaskParams::default(),
            shape: TaskShape {
                cpu: SimDuration::from_micros(5),
                gpu_kernel: SimDuration::ZERO,
                bytes_in: 0,
                bytes_out: 0,
            },
            level: 0,
            task: 7,
        };
        // Everything the worker will ever see arrives pre-buffered in the
        // handshake decoder; the socket itself carries nothing.
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_frame(&Frame::Request {
            reader: 0,
            req_id: 3,
        }));
        dec.feed(&encode_frame(&Frame::Deliver {
            kind: DeviceKind::Cpu,
            buffers: vec![buffer],
        }));
        dec.feed(&encode_frame(&Frame::Shutdown));

        let worker = std::thread::spawn(move || run_worker_primed(server, Behavior::Identity, dec));

        let mut reply = FrameDecoder::new();
        let mut chunk = [0u8; 4096];
        let mut got = Vec::new();
        let mut stream = client;
        while got.len() < 4 {
            if let Some(f) = reply.next_frame().expect("valid reply stream") {
                got.push(f);
                continue;
            }
            let n = std::io::Read::read(&mut stream, &mut chunk).expect("read");
            assert!(n > 0, "worker hung up before draining primed frames");
            reply.feed(&chunk[..n]);
        }
        assert!(matches!(got[0], Frame::Request { req_id: 3, .. }));
        assert!(
            matches!(&got[1], Frame::Complete { buffer, .. } if buffer.id.0 == 7),
            "the primed Deliver must be executed, got {:?}",
            got[1]
        );
        assert!(matches!(got[2], Frame::BatchDone));
        assert!(matches!(got[3], Frame::Bye));
        assert_eq!(worker.join().expect("join").expect("serve ok"), 1);
    }
}
