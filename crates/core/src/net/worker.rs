//! Worker-process side of the networked backend.
//!
//! A worker is deliberately dumb: it owns no scheduling state. It connects
//! to the coordinator, learns its `(node, slot)` identity from the `Hello`
//! handshake, and then serves a simple request/response loop:
//!
//! * `Request` frames are echoed back — the demand path is
//!   coordinator→worker→coordinator so that the real socket round-trip is
//!   exercised on every window refill, exactly where Anthill's labeled
//!   stream messages would travel.
//! * `Deliver` frames are executed buffer-by-buffer: the worker measures a
//!   wall-clock span, derives the modeled device occupancy from the
//!   buffer's [`TaskShape`](anthill_hetsim::TaskShape) and the delivered
//!   device kind, applies its [`Behavior`] (identity forwarding,
//!   recirculation, or busy-spinning), and answers with one `Complete` per
//!   buffer followed by `BatchDone`.
//! * `Shutdown` is answered with `Bye` and a clean exit.
//!
//! When the socket is idle past the read timeout the worker emits a
//! `Heartbeat` so the coordinator can distinguish "slow" from "dead".

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use anthill_hetsim::DeviceKind;

use crate::buffer::DataBuffer;

use super::frame::{encode_frame, Frame, FrameDecoder, WireSpan};

/// What a worker does with each delivered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Execute and forward: no recirculation (one task per buffer).
    Identity,
    /// Recirculate each buffer with `level + 1` until it has lived
    /// `rounds` levels, mirroring the multi-round test filters.
    Recirc {
        /// Total number of levels a buffer passes through.
        rounds: u8,
    },
    /// Spin for roughly this many microseconds of wall time per buffer
    /// before completing — gives chaos runs a window to kill the process
    /// while work is genuinely in flight.
    Busy {
        /// Busy-spin duration per buffer, microseconds.
        micros: u64,
    },
}

impl Behavior {
    /// Parse the CLI spelling used by the hidden `worker` subcommand:
    /// `identity`, `recirc:N`, or `busy:N`.
    pub fn parse(s: &str) -> Option<Behavior> {
        if s == "identity" {
            return Some(Behavior::Identity);
        }
        if let Some(n) = s.strip_prefix("recirc:") {
            return n.parse().ok().map(|rounds| Behavior::Recirc { rounds });
        }
        if let Some(n) = s.strip_prefix("busy:") {
            return n.parse().ok().map(|micros| Behavior::Busy { micros });
        }
        None
    }

    fn apply(&self, buffer: &DataBuffer) -> Vec<DataBuffer> {
        match *self {
            Behavior::Identity => Vec::new(),
            Behavior::Recirc { rounds } => {
                if buffer.level + 1 < rounds {
                    let mut next = buffer.clone();
                    next.level += 1;
                    vec![next]
                } else {
                    Vec::new()
                }
            }
            Behavior::Busy { micros } => {
                let until = Instant::now() + Duration::from_micros(micros);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
                Vec::new()
            }
        }
    }
}

/// Modeled device occupancy for `buffer` on a device of `kind` — the same
/// number every other backend charges, so completion accounting matches.
pub fn modeled_proc_ns(buffer: &DataBuffer, kind: DeviceKind) -> u64 {
    match kind {
        DeviceKind::Cpu => buffer.shape.cpu.as_nanos(),
        DeviceKind::Gpu => buffer.shape.gpu_kernel.as_nanos(),
    }
}

fn send(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&encode_frame(frame))
}

/// Serve the worker loop on an established connection until `Shutdown`
/// arrives or the coordinator hangs up. Returns the number of buffers
/// executed.
pub fn run_worker(mut stream: TcpStream, behavior: Behavior) -> std::io::Result<u64> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let epoch = Instant::now();
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut executed = 0u64;
    let mut heartbeat_seq = 0u64;
    loop {
        // Drain every complete frame already buffered before reading more.
        while let Some(frame) = dec
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            match frame {
                Frame::Hello { .. } => send(&mut stream, &frame)?,
                Frame::Request { .. } => send(&mut stream, &frame)?,
                Frame::Deliver { kind, buffers } => {
                    for buffer in buffers {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        let recirculated = behavior.apply(&buffer);
                        let end_ns = epoch.elapsed().as_nanos() as u64;
                        executed += 1;
                        send(
                            &mut stream,
                            &Frame::Complete {
                                proc_ns: modeled_proc_ns(&buffer, kind),
                                buffer,
                                span: WireSpan { start_ns, end_ns },
                                recirculated,
                            },
                        )?;
                    }
                    send(&mut stream, &Frame::BatchDone)?;
                }
                Frame::DeliverAt {
                    filter,
                    kind,
                    buffers,
                } => {
                    // Graph runs: same execution loop as `Deliver`, but the
                    // filter id rides along unchanged so the coordinator can
                    // route the completion — the worker stays stateless.
                    for buffer in buffers {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        let recirculated = behavior.apply(&buffer);
                        let end_ns = epoch.elapsed().as_nanos() as u64;
                        executed += 1;
                        send(
                            &mut stream,
                            &Frame::CompleteAt {
                                filter,
                                proc_ns: modeled_proc_ns(&buffer, kind),
                                buffer,
                                span: WireSpan { start_ns, end_ns },
                                recirculated,
                            },
                        )?;
                    }
                    send(&mut stream, &Frame::BatchDone)?;
                }
                Frame::Shutdown => {
                    send(&mut stream, &Frame::Bye).ok();
                    return Ok(executed);
                }
                // Coordinator never sends these; tolerate them.
                Frame::Complete { .. }
                | Frame::CompleteAt { .. }
                | Frame::BatchDone
                | Frame::Heartbeat { .. }
                | Frame::Bye => {}
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(executed), // coordinator hung up
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                heartbeat_seq += 1;
                send(&mut stream, &Frame::Heartbeat { seq: heartbeat_seq })?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Connect to `addr` and serve [`run_worker`] — the body of the hidden
/// `worker` subcommand in the `repro` binary.
pub fn connect_and_run(addr: &str, behavior: Behavior) -> std::io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    run_worker(stream, behavior)
}

/// Spawn an in-process worker thread serving `behavior` over `stream`.
/// Loopback tests use this where a full child process would only add
/// startup latency; the protocol exercised is byte-identical.
pub fn spawn_worker_thread(
    stream: TcpStream,
    behavior: Behavior,
) -> std::thread::JoinHandle<std::io::Result<u64>> {
    std::thread::Builder::new()
        .name("anthill-net-worker".into())
        .spawn(move || run_worker(stream, behavior))
        .expect("spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_parses_cli_spellings() {
        assert_eq!(Behavior::parse("identity"), Some(Behavior::Identity));
        assert_eq!(
            Behavior::parse("recirc:3"),
            Some(Behavior::Recirc { rounds: 3 })
        );
        assert_eq!(
            Behavior::parse("busy:250"),
            Some(Behavior::Busy { micros: 250 })
        );
        assert_eq!(Behavior::parse("bogus"), None);
        assert_eq!(Behavior::parse("recirc:x"), None);
    }

    #[test]
    fn recirc_stops_at_round_limit() {
        use anthill_estimator::TaskParams;
        use anthill_hetsim::TaskShape;
        use anthill_simkit::SimDuration;
        let b = DataBuffer {
            id: crate::buffer::BufferId(1),
            params: TaskParams::default(),
            shape: TaskShape {
                cpu: SimDuration::ZERO,
                gpu_kernel: SimDuration::ZERO,
                bytes_in: 0,
                bytes_out: 0,
            },
            level: 0,
            task: 1,
        };
        let behavior = Behavior::Recirc { rounds: 2 };
        let next = behavior.apply(&b);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].level, 1);
        assert!(behavior.apply(&next[0]).is_empty());
    }
}
