//! The coordinator-side net driver: [`Transport`] + [`Executor`] over TCP.
//!
//! Two run modes share the engine, the protocol, and the worker binary:
//!
//! * [`run_deterministic`] — a lockstep loop structured exactly like the
//!   sequential reference driver: one FIFO message inbox, a
//!   [`VirtualClock`] ticked once per message, batch limit 1. The only
//!   difference is that every request hop and every execution makes a
//!   *real* socket round trip — the frame is written, the worker answers,
//!   and the coordinator blocks for that answer at the moment the
//!   sequential driver would have handled the message. Because the engine
//!   sees callbacks in the identical order, per-device assignment counts
//!   are bit-identical to the sequential/native/DES backends (the
//!   policy-parity suite pins this).
//! * [`run_concurrent`] — a wall-clock event loop: one reader thread per
//!   connection feeds a channel, workers genuinely execute in parallel,
//!   request timeouts fire from a timer heap, and worker death (process
//!   kill, connection sever, heartbeat silence) maps onto the engine's
//!   PR-3 recovery path ([`Engine::worker_died`] re-homes in-flight
//!   buffers).
//!
//! Backpressure is the engine's own demand-driven window: a worker slot
//! holds at most `max_window` outstanding requests and
//! [`NetConfig::batch_limit`] in-flight `Deliver` frames, so neither side
//! ever buffers an unbounded frame backlog.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::{SimDuration, SimTime};

use crate::buffer::DataBuffer;
use crate::engine::{
    Clock, Engine, EngineConfig, Executor, Transport, VirtualClock, WallClock, WorkerRef,
};
use crate::faults::{ConnectionDropSpec, RecoveryConfig};
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::Policy;
use crate::weights::WeightProvider;

use super::frame::{encode_frame, Frame, FrameDecoder, FrameError};
use super::worker::modeled_proc_ns;

/// One established coordinator↔worker connection and the device identity
/// its slot schedules for. The caller owns connection establishment
/// (loopback listener, spawned child process, remote host — the driver
/// does not care).
#[derive(Debug)]
pub struct NetWorkerConn {
    /// The device the worker slot schedules for.
    pub device: DeviceId,
    /// The connected stream, handshake not yet performed.
    pub stream: TcpStream,
}

/// Configuration of a networked run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
    /// Engine recovery knobs (timeouts/retries; concurrent mode only —
    /// the lockstep driver never arms timers, like the sequential one).
    pub recovery: RecoveryConfig,
    /// Observability sink for engine events and the re-stamped
    /// `remote_start`/`remote_finish` worker spans.
    pub recorder: Recorder,
    /// Scheduled connection severs (net-backend fault injection).
    pub drops: Vec<ConnectionDropSpec>,
    /// Hard wall-clock bound on the whole run; exceeding it aborts with
    /// an error so a wedged run can never hang CI.
    pub deadline: Duration,
    /// Declare a worker dead after this much silence (no frame of any
    /// kind, heartbeats included). `None` disables the check; EOF on the
    /// connection is always fatal regardless.
    pub heartbeat_timeout: Option<Duration>,
    /// Upper bound on buffers per `Deliver` frame (the in-flight frame
    /// bound; 1 matches the sequential reference driver and is required
    /// for cross-backend parity).
    pub batch_limit: usize,
}

impl NetConfig {
    /// Defaults: the given policy, a 256-wide window cap, recovery off,
    /// no recording, no severs, a 60 s deadline, batch limit 1.
    pub fn new(policy: Policy) -> NetConfig {
        NetConfig {
            policy,
            max_window: 256,
            recovery: RecoveryConfig::disabled(),
            recorder: Recorder::disabled(),
            drops: Vec::new(),
            deadline: Duration::from_secs(60),
            heartbeat_timeout: None,
            batch_limit: 1,
        }
    }
}

/// Result of a networked run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// `(device kind, level) -> buffers completed`.
    pub assigned: std::collections::HashMap<(DeviceKind, u8), u64>,
    /// Completion order, as `(device kind, buffer id)`.
    pub dispatch_order: Vec<(DeviceKind, u64)>,
    /// Total buffers completed.
    pub total: u64,
    /// Worker slots that died during the run (sever, EOF, silence).
    pub deaths: u32,
}

fn proto_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Coordinator-side state of one worker connection.
struct SlotIo {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Frames successfully written to this slot.
    frames_sent: u64,
    /// Sever the connection once `frames_sent` reaches this.
    sever_after: Option<u64>,
    /// Writable? Cleared on sever or write failure; the outer loop reaps
    /// the slot into `Engine::worker_died`.
    open: bool,
}

impl SlotIo {
    fn new(stream: TcpStream, sever_after: Option<u64>) -> SlotIo {
        SlotIo {
            stream,
            dec: FrameDecoder::new(),
            frames_sent: 0,
            sever_after,
            open: true,
        }
    }

    /// Write one frame, applying the sever schedule. Failures close the
    /// slot instead of propagating: the engine learns about the death via
    /// the reap path, exactly as it would for a real crashed peer.
    fn write(&mut self, frame: &Frame) {
        if !self.open {
            return;
        }
        if let Some(limit) = self.sever_after {
            if self.frames_sent >= limit {
                let _ = self.stream.shutdown(Shutdown::Both);
                self.open = false;
                return;
            }
        }
        use std::io::Write as _;
        if self.stream.write_all(&encode_frame(frame)).is_err() {
            let _ = self.stream.shutdown(Shutdown::Both);
            self.open = false;
        } else {
            self.frames_sent += 1;
        }
    }

    /// Blocking-read the next non-heartbeat frame, bounded by `deadline`.
    fn read_frame(&mut self, deadline: Instant) -> io::Result<Frame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.dec.next_frame().map_err(proto_err)? {
                Some(Frame::Heartbeat { .. }) => continue,
                Some(f) => return Ok(f),
                None => {}
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline while awaiting frame",
                ));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker connection closed",
                    ))
                }
                Ok(n) => self.dec.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn sever_for(drops: &[ConnectionDropSpec], node: usize, worker: usize) -> Option<u64> {
    drops
        .iter()
        .find(|d| d.node == node && d.worker == worker)
        .map(|d| d.after_frames)
}

/// `Hello` handshake on every connection: send the slot identity, expect
/// it echoed verbatim. A slot that fails stays in the topology but is
/// reaped as dead before the first kick.
fn handshake(slots: &mut [SlotIo], deadline: Instant) {
    for (i, slot) in slots.iter_mut().enumerate() {
        let hello = Frame::Hello {
            node: 0,
            slot: i as u32,
        };
        slot.write(&hello);
        if !slot.open {
            continue;
        }
        match slot.read_frame(deadline) {
            Ok(echo) if echo == hello => {}
            _ => {
                let _ = slot.stream.shutdown(Shutdown::Both);
                slot.open = false;
            }
        }
    }
}

// ------------------------------------------------------------- lockstep

enum Msg {
    Request {
        from: WorkerRef,
        reader: usize,
        req_id: u64,
    },
    Exec {
        worker: WorkerRef,
        buffer: DataBuffer,
    },
}

/// Lockstep driver: the sequential reference driver's FIFO inbox, plus a
/// socket write at each send so every hop crosses the wire.
struct LockstepDriver {
    inbox: VecDeque<Msg>,
    slots: Vec<SlotIo>,
    inflight: Vec<Vec<DataBuffer>>,
    dead: Vec<bool>,
}

impl Transport for LockstepDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.slots[from.worker].write(&Frame::Request {
            reader: reader as u32,
            req_id,
        });
        self.inbox.push_back(Msg::Request {
            from,
            reader,
            req_id,
        });
    }
}

impl Executor for LockstepDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        for buffer in batch {
            self.slots[worker.worker].write(&Frame::Deliver {
                kind: worker.device.kind,
                buffers: vec![buffer.clone()],
            });
            self.inflight[worker.worker].push(buffer.clone());
            self.inbox.push_back(Msg::Exec { worker, buffer });
        }
    }
}

/// Retire every slot whose connection failed since the last engine call.
fn reap<C: Clock, W: WeightProvider>(
    engine: &mut Engine<C, W>,
    drv: &mut LockstepDriver,
    deaths: &mut u32,
) {
    for slot in 0..drv.slots.len() {
        if !drv.slots[slot].open && !drv.dead[slot] {
            drv.dead[slot] = true;
            *deaths += 1;
            let inflight = std::mem::take(&mut drv.inflight[slot]);
            engine.worker_died(0, slot, inflight, drv);
        }
    }
}

/// Run `sources` through one engine node whose workers live behind the
/// given connections, in lockstep deterministic mode (see the module
/// docs). Worker behaviour — identity forwarding, recirculation — is
/// whatever the remote side was started with.
pub fn run_deterministic<W: WeightProvider>(
    cfg: NetConfig,
    workers: Vec<NetWorkerConn>,
    sources: Vec<DataBuffer>,
    weights: W,
) -> io::Result<NetOutcome> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    let mut drv = LockstepDriver {
        inbox: VecDeque::new(),
        slots: Vec::with_capacity(workers.len()),
        inflight: vec![Vec::new(); workers.len()],
        dead: vec![false; workers.len()],
    };
    for (i, conn) in workers.into_iter().enumerate() {
        engine.add_worker(node, conn.device);
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        conn.stream.set_nodelay(true).ok();
        drv.slots
            .push(SlotIo::new(conn.stream, sever_for(&cfg.drops, node, i)));
    }
    assert!(!drv.slots.is_empty(), "no worker connections configured");
    handshake(&mut drv.slots, hard_deadline);
    for b in sources {
        engine.seed_reader(node, b);
    }

    let rec = cfg.recorder.clone();
    let mut deaths = 0u32;
    reap(&mut engine, &mut drv, &mut deaths);
    // Kick every live worker's requester, as the sequential driver does.
    for w in engine.worker_refs() {
        if !drv.dead[w.worker] {
            engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
        }
    }

    let mut dispatch_order = Vec::new();
    let mut tick = 0u64;
    loop {
        reap(&mut engine, &mut drv, &mut deaths);
        let Some(msg) = drv.inbox.pop_front() else {
            break;
        };
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                if drv.dead[from.worker] || !drv.slots[from.worker].open {
                    continue; // the request died with its connection
                }
                match drv.slots[from.worker].read_frame(hard_deadline) {
                    Ok(Frame::Request {
                        req_id: echoed_id, ..
                    }) if echoed_id == req_id => {
                        let buffer = engine.answer_request(reader, from.device.kind);
                        engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let _ = drv.slots[from.worker].stream.shutdown(Shutdown::Both);
                        drv.slots[from.worker].open = false;
                    }
                }
            }
            Msg::Exec { worker, buffer } => {
                if drv.dead[worker.worker] || !drv.slots[worker.worker].open {
                    continue; // already re-homed by reap
                }
                let completion =
                    drv.slots[worker.worker]
                        .read_frame(hard_deadline)
                        .and_then(|first| {
                            let second = drv.slots[worker.worker].read_frame(hard_deadline)?;
                            Ok((first, second))
                        });
                match completion {
                    Ok((
                        Frame::Complete {
                            buffer: done,
                            proc_ns: _,
                            span,
                            recirculated,
                        },
                        Frame::BatchDone,
                    )) if done.id == buffer.id => {
                        drv.inflight[worker.worker].retain(|b| b.id != done.id);
                        dispatch_order.push((worker.device.kind, done.id.0));
                        // Charge the modeled time (computed locally from the
                        // shape, identical to what the worker reports) so the
                        // engine's DQAA/accounting inputs match the other
                        // backends bit-for-bit.
                        let proc = SimDuration(modeled_proc_ns(&buffer, worker.device.kind));
                        let ts = clock.now().as_nanos();
                        let dev = DeviceRef::device(worker.device);
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteStart {
                                buffer: done.id.0,
                                level: done.level,
                            },
                        );
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteFinish {
                                buffer: done.id.0,
                                level: done.level,
                                proc_ns: span.end_ns.saturating_sub(span.start_ns),
                            },
                        );
                        engine.task_finished(worker.node, worker.worker, &done, proc);
                        for r in recirculated {
                            engine.recirculate(node, r, &mut drv);
                        }
                        engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let _ = drv.slots[worker.worker].stream.shutdown(Shutdown::Both);
                        drv.slots[worker.worker].open = false;
                    }
                }
            }
        }
    }

    shutdown_slots(&mut drv.slots);
    Ok(NetOutcome {
        assigned: engine.tasks_by().clone(),
        dispatch_order,
        total: engine.total_done(),
        deaths,
    })
}

fn shutdown_slots(slots: &mut [SlotIo]) {
    for slot in slots.iter_mut() {
        if slot.open {
            slot.write(&Frame::Shutdown);
            let _ = slot.stream.shutdown(Shutdown::Write);
        }
    }
}

// ----------------------------------------------------------- concurrent

enum Pump {
    /// A decoded frame from a worker's reader thread.
    Frame(usize, Frame),
    /// The worker's connection reached EOF or failed.
    Closed(usize),
}

/// Concurrent driver: frames go out immediately; timeouts live in a heap
/// keyed by wall-clock fire time.
struct ConcurrentDriver {
    slots: Vec<SlotIo>,
    inflight: Vec<Vec<DataBuffer>>,
    /// `(fire_ns, slot, req_id)` min-heap on the shared wall clock.
    timers: BinaryHeap<Reverse<(u64, usize, u64)>>,
    batch_limit: usize,
}

impl Transport for ConcurrentDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.slots[from.worker].write(&Frame::Request {
            reader: reader as u32,
            req_id,
        });
    }

    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        self.timers
            .push(Reverse((fire_at.as_nanos(), worker.worker, req_id)));
    }
}

impl Executor for ConcurrentDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        self.batch_limit
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        self.inflight[worker.worker].extend(batch.iter().cloned());
        self.slots[worker.worker].write(&Frame::Deliver {
            kind: worker.device.kind,
            buffers: batch,
        });
    }
}

fn kill_slot<C: Clock, W: WeightProvider>(
    engine: &mut Engine<C, W>,
    drv: &mut ConcurrentDriver,
    dead: &mut [bool],
    deaths: &mut u32,
    slot: usize,
) {
    if dead[slot] {
        return;
    }
    dead[slot] = true;
    *deaths += 1;
    if drv.slots[slot].open {
        let _ = drv.slots[slot].stream.shutdown(Shutdown::Both);
        drv.slots[slot].open = false;
    }
    let inflight = std::mem::take(&mut drv.inflight[slot]);
    engine.worker_died(0, slot, inflight, drv);
}

/// Run `sources` through one engine node whose workers execute
/// concurrently behind the given connections, in wall-clock time with the
/// full recovery path armed (see the module docs). The run ends when every
/// seeded and recirculated buffer has completed exactly once, or errs at
/// the deadline.
pub fn run_concurrent<W: WeightProvider>(
    cfg: NetConfig,
    workers: Vec<NetWorkerConn>,
    sources: Vec<DataBuffer>,
    weights: W,
) -> io::Result<NetOutcome> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let wall = WallClock::start();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: cfg.recovery,
        },
        wall.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    let mut drv = ConcurrentDriver {
        slots: Vec::with_capacity(workers.len()),
        inflight: vec![Vec::new(); workers.len()],
        timers: BinaryHeap::new(),
        batch_limit: cfg.batch_limit.max(1),
    };
    let mut read_halves = Vec::with_capacity(workers.len());
    for (i, conn) in workers.into_iter().enumerate() {
        engine.add_worker(node, conn.device);
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        conn.stream.set_nodelay(true).ok();
        read_halves.push(conn.stream.try_clone()?);
        drv.slots
            .push(SlotIo::new(conn.stream, sever_for(&cfg.drops, node, i)));
    }
    assert!(!drv.slots.is_empty(), "no worker connections configured");
    handshake(&mut drv.slots, hard_deadline);

    // One reader thread per connection, all feeding one channel; mpsc
    // ordering guarantees a slot's buffered completions are seen before
    // its Closed marker.
    let (tx, rx) = mpsc::channel::<Pump>();
    let mut readers = Vec::new();
    for (slot, mut stream) in read_halves.into_iter().enumerate() {
        stream.set_read_timeout(None).ok();
        let tx = tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("anthill-net-rx-{slot}"))
            .spawn(move || {
                let mut dec = FrameDecoder::new();
                let mut chunk = [0u8; 64 * 1024];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            let _ = tx.send(Pump::Closed(slot));
                            return;
                        }
                        Ok(n) => {
                            dec.feed(&chunk[..n]);
                            loop {
                                match dec.next_frame() {
                                    Ok(Some(f)) => {
                                        if tx.send(Pump::Frame(slot, f)).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(_) => {
                                        let _ = tx.send(Pump::Closed(slot));
                                        return;
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            let _ = tx.send(Pump::Closed(slot));
                            return;
                        }
                    }
                }
            })
            .expect("spawn net reader thread");
        readers.push(handle);
    }
    drop(tx);

    let mut expected = sources.len() as u64;
    for b in sources {
        engine.seed_reader(node, b);
    }
    let n_slots = drv.slots.len();
    let rec = cfg.recorder.clone();
    let mut dead = vec![false; n_slots];
    let mut deaths = 0u32;
    let mut last_seen = vec![Instant::now(); n_slots];
    let mut pending_procs: Vec<Vec<SimDuration>> = vec![Vec::new(); n_slots];
    let mut dispatch_order = Vec::new();

    for slot in 0..n_slots {
        if !drv.slots[slot].open {
            kill_slot(&mut engine, &mut drv, &mut dead, &mut deaths, slot);
        }
    }
    for w in engine.worker_refs() {
        if !dead[w.worker] {
            engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
        }
    }

    while engine.total_done() < expected {
        if Instant::now() >= hard_deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "net run deadline exceeded: {}/{} buffers done, {} worker(s) dead",
                    engine.total_done(),
                    expected,
                    deaths
                ),
            ));
        }
        // Fire due request timeouts.
        let now_ns = wall.now().as_nanos();
        while let Some(&Reverse((fire, slot, req_id))) = drv.timers.peek() {
            if fire > now_ns {
                break;
            }
            drv.timers.pop();
            engine.request_timed_out(0, slot, req_id, &mut drv);
        }
        // Declare silent workers dead.
        if let Some(hb) = cfg.heartbeat_timeout {
            for slot in 0..n_slots {
                if !dead[slot] && last_seen[slot].elapsed() > hb {
                    kill_slot(&mut engine, &mut drv, &mut dead, &mut deaths, slot);
                }
            }
        }
        if dead.iter().all(|&d| d) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!(
                    "every worker died with {}/{} buffers done",
                    engine.total_done(),
                    expected
                ),
            ));
        }
        // Sleep until the next frame or the next timer, whichever first.
        let mut wait = Duration::from_millis(25);
        if let Some(&Reverse((fire, _, _))) = drv.timers.peek() {
            let until = Duration::from_nanos(fire.saturating_sub(wall.now().as_nanos()));
            wait = wait.min(until.max(Duration::from_millis(1)));
        }
        let event = match rx.recv_timeout(wait) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                for slot in 0..n_slots {
                    kill_slot(&mut engine, &mut drv, &mut dead, &mut deaths, slot);
                }
                continue;
            }
        };
        match event {
            Pump::Closed(slot) => kill_slot(&mut engine, &mut drv, &mut dead, &mut deaths, slot),
            Pump::Frame(slot, frame) => {
                last_seen[slot] = Instant::now();
                if dead[slot] {
                    continue; // a late frame from a retired slot
                }
                match frame {
                    Frame::Request { reader, req_id } => {
                        let kind = engine.worker_device(0, slot).kind;
                        let buffer = engine.answer_request(reader as usize, kind);
                        engine.data_arrived(0, slot, req_id, buffer, &mut drv);
                    }
                    Frame::Complete {
                        buffer,
                        proc_ns,
                        span,
                        recirculated,
                    } => {
                        drv.inflight[slot].retain(|b| b.id != buffer.id);
                        let device = engine.worker_device(0, slot);
                        dispatch_order.push((device.kind, buffer.id.0));
                        let ts = wall.now().as_nanos();
                        let dev = DeviceRef::device(device);
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteStart {
                                buffer: buffer.id.0,
                                level: buffer.level,
                            },
                        );
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteFinish {
                                buffer: buffer.id.0,
                                level: buffer.level,
                                proc_ns: span.end_ns.saturating_sub(span.start_ns),
                            },
                        );
                        let proc = SimDuration(proc_ns);
                        engine.task_finished(0, slot, &buffer, proc);
                        pending_procs[slot].push(proc);
                        expected += recirculated.len() as u64;
                        for r in recirculated {
                            engine.recirculate(node, r, &mut drv);
                        }
                    }
                    Frame::BatchDone => {
                        let procs = std::mem::take(&mut pending_procs[slot]);
                        engine.worker_idle(0, slot, &procs, &mut drv);
                    }
                    // Heartbeats already refreshed `last_seen`; the rest
                    // are protocol noise a healthy worker never sends.
                    Frame::Heartbeat { .. }
                    | Frame::Hello { .. }
                    | Frame::Bye
                    | Frame::Deliver { .. }
                    | Frame::Shutdown => {}
                }
            }
        }
        // Reap slots whose writes failed inside the engine callbacks.
        for slot in 0..n_slots {
            if !drv.slots[slot].open && !dead[slot] {
                kill_slot(&mut engine, &mut drv, &mut dead, &mut deaths, slot);
            }
        }
    }

    shutdown_slots(&mut drv.slots);
    drop(drv);
    drop(rx);
    for handle in readers {
        let _ = handle.join();
    }
    Ok(NetOutcome {
        assigned: engine.tasks_by().clone(),
        dispatch_order,
        total: engine.total_done(),
        deaths,
    })
}
