//! The coordinator-side net driver: [`Transport`] + [`Executor`] over TCP.
//!
//! Two run modes share the engine, the protocol, and the worker binary:
//!
//! * [`run_deterministic`] — a lockstep loop structured exactly like the
//!   sequential reference driver: one FIFO message inbox, a
//!   [`VirtualClock`] ticked once per message, batch limit 1. The only
//!   difference is that every request hop and every execution makes a
//!   *real* socket round trip — the frame is written, the worker answers,
//!   and the coordinator blocks for that answer at the moment the
//!   sequential driver would have handled the message. Because the engine
//!   sees callbacks in the identical order, per-device assignment counts
//!   are bit-identical to the sequential/native/DES backends (the
//!   policy-parity suite pins this).
//! * [`run_concurrent`] — a wall-clock event loop: one reader thread per
//!   connection feeds a channel, workers genuinely execute in parallel,
//!   request timeouts fire from a timer heap, and worker death (process
//!   kill, connection sever, heartbeat silence) maps onto the engine's
//!   PR-3 recovery path ([`Engine::worker_died`] re-homes in-flight
//!   buffers).
//!
//! Backpressure is the engine's own demand-driven window: a worker slot
//! holds at most `max_window` outstanding requests and
//! [`NetConfig::batch_limit`] in-flight `Deliver` frames, so neither side
//! ever buffers an unbounded frame backlog.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::{SimDuration, SimTime};

use crate::buffer::DataBuffer;
use crate::engine::sequential::GraphEmission;
use crate::engine::{
    AdmissionConfig, AdmissionController, AdmissionCounters, Clock, Engine, EngineConfig, Executor,
    Offer, Transport, VirtualClock, WallClock, WorkerRef,
};
use crate::faults::{ConnectionDropSpec, RecoveryConfig};
use crate::membership::{Autoscaler, ScaleAction, WorkerPool};
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::Policy;
use crate::weights::WeightProvider;

use super::conn::WireStats;
use super::eventloop::{Pump, Reactor};
use super::frame::{
    encode_deliver_at_into, encode_deliver_into, encode_frame, encode_frame_into, Frame,
    FrameDecoder, FrameError,
};
use super::worker::modeled_proc_ns;

/// Which concurrent coordinator implementation to run (A/B knob, like the
/// native pipeline's `HotPath`). Lockstep [`run_deterministic`] ignores
/// this: it keeps its blocking path so bit-identical parity with the
/// sequential reference is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPath {
    /// The retained baseline: one blocking reader thread per socket
    /// feeding an mpsc channel, blocking per-frame writes.
    Threads,
    /// The readiness-based event loop: non-blocking sockets multiplexed
    /// by the [`anthill_poller`] shim on the coordinator thread, vectored
    /// writes with frame coalescing, pooled encode buffers.
    EventLoop,
}

/// One established coordinator↔worker connection and the device identity
/// its slot schedules for. The caller owns connection establishment
/// (loopback listener, spawned child process, remote host — the driver
/// does not care).
#[derive(Debug)]
pub struct NetWorkerConn {
    /// The device the worker slot schedules for.
    pub device: DeviceId,
    /// The connected stream, handshake not yet performed.
    pub stream: TcpStream,
}

/// Configuration of a networked run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
    /// Engine recovery knobs (timeouts/retries; concurrent mode only —
    /// the lockstep driver never arms timers, like the sequential one).
    pub recovery: RecoveryConfig,
    /// Observability sink for engine events and the re-stamped
    /// `remote_start`/`remote_finish` worker spans.
    pub recorder: Recorder,
    /// Scheduled connection severs (net-backend fault injection).
    pub drops: Vec<ConnectionDropSpec>,
    /// Hard wall-clock bound on the whole run; exceeding it aborts with
    /// an error so a wedged run can never hang CI.
    pub deadline: Duration,
    /// Declare a worker dead after this much silence (no frame of any
    /// kind, heartbeats included). `None` disables the check; EOF on the
    /// connection is always fatal regardless.
    pub heartbeat_timeout: Option<Duration>,
    /// Upper bound on buffers per `Deliver` frame (the in-flight frame
    /// bound; 1 matches the sequential reference driver and is required
    /// for cross-backend parity).
    pub batch_limit: usize,
    /// Concurrent coordinator implementation (see [`NetPath`]); ignored
    /// by the lockstep modes.
    pub path: NetPath,
}

impl NetConfig {
    /// Defaults: the given policy, a 256-wide window cap, recovery off,
    /// no recording, no severs, a 60 s deadline, batch limit 1, the
    /// event-loop coordinator.
    pub fn new(policy: Policy) -> NetConfig {
        NetConfig {
            policy,
            max_window: 256,
            recovery: RecoveryConfig::disabled(),
            recorder: Recorder::disabled(),
            drops: Vec::new(),
            deadline: Duration::from_secs(60),
            heartbeat_timeout: None,
            batch_limit: 1,
            path: NetPath::EventLoop,
        }
    }

    /// Same defaults with an explicit concurrent coordinator path.
    pub fn with_path(policy: Policy, path: NetPath) -> NetConfig {
        NetConfig {
            path,
            ..NetConfig::new(policy)
        }
    }
}

/// Result of a networked run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// `(device kind, level) -> buffers completed`.
    pub assigned: std::collections::HashMap<(DeviceKind, u8), u64>,
    /// Completion order, as `(device kind, buffer id)`.
    pub dispatch_order: Vec<(DeviceKind, u64)>,
    /// Total buffers completed.
    pub total: u64,
    /// Worker slots that died during the run (sever, EOF, silence).
    pub deaths: u32,
    /// Wire-level counters. Populated by the event-loop coordinator;
    /// zeroed on the threaded baseline and the lockstep modes, which do
    /// not track per-connection counters.
    pub wire: WireStats,
}

fn proto_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Coordinator-side state of one worker connection.
struct SlotIo {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Reused encode buffer: frames are serialized here and written out,
    /// so the blocking path allocates once per slot, not once per frame.
    scratch: Vec<u8>,
    /// Frames successfully written to this slot.
    frames_sent: u64,
    /// Sever the connection once `frames_sent` reaches this.
    sever_after: Option<u64>,
    /// Writable? Cleared on sever or write failure; the outer loop reaps
    /// the slot into `Engine::worker_died`.
    open: bool,
}

impl SlotIo {
    fn new(stream: TcpStream, sever_after: Option<u64>) -> SlotIo {
        SlotIo {
            stream,
            dec: FrameDecoder::new(),
            scratch: Vec::new(),
            frames_sent: 0,
            sever_after,
            open: true,
        }
    }

    /// Apply the sever schedule; returns false if the slot just severed
    /// (or was already closed) and the write must not happen.
    fn pre_write(&mut self) -> bool {
        if !self.open {
            return false;
        }
        if let Some(limit) = self.sever_after {
            if self.frames_sent >= limit {
                let _ = self.stream.shutdown(Shutdown::Both);
                self.open = false;
                return false;
            }
        }
        true
    }

    /// Write the frame serialized in `scratch`. Failures close the slot
    /// instead of propagating: the engine learns about the death via the
    /// reap path, exactly as it would for a real crashed peer.
    fn write_scratch(&mut self) {
        use std::io::Write as _;
        if self.stream.write_all(&self.scratch).is_err() {
            let _ = self.stream.shutdown(Shutdown::Both);
            self.open = false;
        } else {
            self.frames_sent += 1;
        }
    }

    /// Write one frame, applying the sever schedule.
    fn write(&mut self, frame: &Frame) {
        if !self.pre_write() {
            return;
        }
        self.scratch.clear();
        encode_frame_into(&mut self.scratch, frame);
        self.write_scratch();
    }

    /// Write a `Deliver` frame encoded straight from the shared
    /// `Arc<DataBuffer>`s the inflight table keeps — no payload clone.
    fn write_deliver(&mut self, kind: DeviceKind, buffers: &[Arc<DataBuffer>]) {
        if !self.pre_write() {
            return;
        }
        self.scratch.clear();
        encode_deliver_into(&mut self.scratch, kind, buffers);
        self.write_scratch();
    }

    /// Graph-mode counterpart of [`SlotIo::write_deliver`].
    fn write_deliver_at(&mut self, filter: u32, kind: DeviceKind, buffers: &[Arc<DataBuffer>]) {
        if !self.pre_write() {
            return;
        }
        self.scratch.clear();
        encode_deliver_at_into(&mut self.scratch, filter, kind, buffers);
        self.write_scratch();
    }

    /// Blocking-read the next non-heartbeat frame, bounded by `deadline`.
    fn read_frame(&mut self, deadline: Instant) -> io::Result<Frame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.dec.next_frame().map_err(proto_err)? {
                Some(Frame::Heartbeat { .. }) => continue,
                Some(f) => return Ok(f),
                None => {}
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline while awaiting frame",
                ));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker connection closed",
                    ))
                }
                Ok(n) => self.dec.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Re-home an inflight table for `Engine::worker_died`: the driver holds
/// the only strong reference once the wire copy is gone, so this is a
/// move, not a payload clone, on the common path.
fn unwrap_inflight(bufs: Vec<Arc<DataBuffer>>) -> Vec<DataBuffer> {
    bufs.into_iter()
        .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
        .collect()
}

fn sever_for(drops: &[ConnectionDropSpec], node: usize, worker: usize) -> Option<u64> {
    drops
        .iter()
        .find(|d| d.node == node && d.worker == worker)
        .map(|d| d.after_frames)
}

/// `Hello` handshake on every connection: send the slot identity, expect
/// it echoed verbatim. A slot that fails stays in the topology but is
/// reaped as dead before the first kick.
fn handshake(slots: &mut [SlotIo], deadline: Instant) {
    for (i, slot) in slots.iter_mut().enumerate() {
        let hello = Frame::Hello {
            node: 0,
            slot: i as u32,
        };
        slot.write(&hello);
        if !slot.open {
            continue;
        }
        match slot.read_frame(deadline) {
            Ok(echo) if echo == hello => {}
            _ => {
                let _ = slot.stream.shutdown(Shutdown::Both);
                slot.open = false;
            }
        }
    }
}

// ------------------------------------------------------------- lockstep

enum Msg {
    Request {
        from: WorkerRef,
        reader: usize,
        req_id: u64,
    },
    Exec {
        worker: WorkerRef,
        buffer: Arc<DataBuffer>,
    },
}

/// Lockstep driver: the sequential reference driver's FIFO inbox, plus a
/// socket write at each send so every hop crosses the wire.
struct LockstepDriver {
    inbox: VecDeque<Msg>,
    slots: Vec<SlotIo>,
    inflight: Vec<Vec<Arc<DataBuffer>>>,
    dead: Vec<bool>,
}

impl Transport for LockstepDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.slots[from.worker].write(&Frame::Request {
            reader: reader as u32,
            req_id,
        });
        self.inbox.push_back(Msg::Request {
            from,
            reader,
            req_id,
        });
    }
}

impl Executor for LockstepDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        for buffer in batch {
            // One shared allocation serves the wire encode, the inflight
            // table, and the inbox — the old path cloned the payload
            // twice per delivery.
            let buffer = Arc::new(buffer);
            self.slots[worker.worker]
                .write_deliver(worker.device.kind, std::slice::from_ref(&buffer));
            self.inflight[worker.worker].push(Arc::clone(&buffer));
            self.inbox.push_back(Msg::Exec { worker, buffer });
        }
    }
}

/// Retire every slot whose connection failed since the last engine call.
fn reap<C: Clock, W: WeightProvider>(
    engine: &mut Engine<C, W>,
    drv: &mut LockstepDriver,
    deaths: &mut u32,
) {
    for slot in 0..drv.slots.len() {
        if !drv.slots[slot].open && !drv.dead[slot] {
            drv.dead[slot] = true;
            *deaths += 1;
            let inflight = unwrap_inflight(std::mem::take(&mut drv.inflight[slot]));
            engine.worker_died(0, slot, inflight, drv);
        }
    }
}

/// Run `sources` through one engine node whose workers live behind the
/// given connections, in lockstep deterministic mode (see the module
/// docs). Worker behaviour — identity forwarding, recirculation — is
/// whatever the remote side was started with.
pub fn run_deterministic<W: WeightProvider>(
    cfg: NetConfig,
    workers: Vec<NetWorkerConn>,
    sources: Vec<DataBuffer>,
    weights: W,
) -> io::Result<NetOutcome> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    let mut drv = LockstepDriver {
        inbox: VecDeque::new(),
        slots: Vec::with_capacity(workers.len()),
        inflight: vec![Vec::new(); workers.len()],
        dead: vec![false; workers.len()],
    };
    for (i, conn) in workers.into_iter().enumerate() {
        engine.add_worker(node, conn.device);
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        conn.stream.set_nodelay(true).ok();
        drv.slots
            .push(SlotIo::new(conn.stream, sever_for(&cfg.drops, node, i)));
    }
    assert!(!drv.slots.is_empty(), "no worker connections configured");
    handshake(&mut drv.slots, hard_deadline);
    for b in sources {
        engine.seed_reader(node, b);
    }

    let rec = cfg.recorder.clone();
    let mut deaths = 0u32;
    reap(&mut engine, &mut drv, &mut deaths);
    // Kick every live worker's requester, as the sequential driver does.
    for w in engine.worker_refs() {
        if !drv.dead[w.worker] {
            engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
        }
    }

    let mut dispatch_order = Vec::new();
    let mut tick = 0u64;
    loop {
        reap(&mut engine, &mut drv, &mut deaths);
        let Some(msg) = drv.inbox.pop_front() else {
            break;
        };
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                if drv.dead[from.worker] || !drv.slots[from.worker].open {
                    continue; // the request died with its connection
                }
                match drv.slots[from.worker].read_frame(hard_deadline) {
                    Ok(Frame::Request {
                        req_id: echoed_id, ..
                    }) if echoed_id == req_id => {
                        let buffer = engine.answer_request(reader, from.device.kind);
                        engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let _ = drv.slots[from.worker].stream.shutdown(Shutdown::Both);
                        drv.slots[from.worker].open = false;
                    }
                }
            }
            Msg::Exec { worker, buffer } => {
                if drv.dead[worker.worker] || !drv.slots[worker.worker].open {
                    continue; // already re-homed by reap
                }
                let completion =
                    drv.slots[worker.worker]
                        .read_frame(hard_deadline)
                        .and_then(|first| {
                            let second = drv.slots[worker.worker].read_frame(hard_deadline)?;
                            Ok((first, second))
                        });
                match completion {
                    Ok((
                        Frame::Complete {
                            buffer: done,
                            proc_ns: _,
                            span,
                            recirculated,
                        },
                        Frame::BatchDone,
                    )) if done.id == buffer.id => {
                        drv.inflight[worker.worker].retain(|b| b.id != done.id);
                        dispatch_order.push((worker.device.kind, done.id.0));
                        // Charge the modeled time (computed locally from the
                        // shape, identical to what the worker reports) so the
                        // engine's DQAA/accounting inputs match the other
                        // backends bit-for-bit.
                        let proc =
                            SimDuration(modeled_proc_ns(buffer.as_ref(), worker.device.kind));
                        let ts = clock.now().as_nanos();
                        let dev = DeviceRef::device(worker.device);
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteStart {
                                buffer: done.id.0,
                                level: done.level,
                            },
                        );
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteFinish {
                                buffer: done.id.0,
                                level: done.level,
                                proc_ns: span.end_ns.saturating_sub(span.start_ns),
                            },
                        );
                        engine.task_finished(worker.node, worker.worker, &done, proc);
                        for r in recirculated {
                            engine.recirculate(node, r, &mut drv);
                        }
                        engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let _ = drv.slots[worker.worker].stream.shutdown(Shutdown::Both);
                        drv.slots[worker.worker].open = false;
                    }
                }
            }
        }
    }

    shutdown_slots(&mut drv.slots);
    Ok(NetOutcome {
        assigned: engine.tasks_by().clone(),
        dispatch_order,
        total: engine.total_done(),
        deaths,
        wire: WireStats::default(),
    })
}

fn shutdown_slots(slots: &mut [SlotIo]) {
    for slot in slots.iter_mut() {
        if slot.open {
            slot.write(&Frame::Shutdown);
            let _ = slot.stream.shutdown(Shutdown::Write);
        }
    }
}

// ------------------------------------------------------ lockstep (graph)

/// Result of a graph-mode networked run ([`run_graph_deterministic`]).
#[derive(Debug, Clone)]
pub struct NetGraphOutcome {
    /// `(filter, device kind, level) -> buffers completed`.
    pub assigned: std::collections::HashMap<(usize, DeviceKind, u8), u64>,
    /// Completion order, as `(filter, device kind, buffer id)`.
    pub dispatch_order: Vec<(usize, DeviceKind, u64)>,
    /// Buffers that left the graph (completed at a filter with no
    /// matching out-edge), in completion order.
    pub outputs: Vec<DataBuffer>,
    /// `edge id -> buffers delivered` over every dataflow edge.
    pub edge_delivered: std::collections::HashMap<u32, u64>,
    /// Total buffers completed, summed over every filter.
    pub total: u64,
    /// Worker slots that died during the run (sever, EOF, silence).
    pub deaths: u32,
}

/// Lockstep driver for DAG runs: one engine node per filter, slots keyed
/// by `(filter, slot)`, and `DeliverAt`/`CompleteAt` frames carrying the
/// filter id so the stateless worker echoes where the completion routes.
struct GraphLockstepDriver {
    inbox: VecDeque<Msg>,
    slots: Vec<Vec<SlotIo>>,
    inflight: Vec<Vec<Vec<Arc<DataBuffer>>>>,
    dead: Vec<Vec<bool>>,
}

impl Transport for GraphLockstepDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.slots[from.node][from.worker].write(&Frame::Request {
            reader: reader as u32,
            req_id,
        });
        self.inbox.push_back(Msg::Request {
            from,
            reader,
            req_id,
        });
    }
}

impl Executor for GraphLockstepDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        for buffer in batch {
            let buffer = Arc::new(buffer);
            self.slots[worker.node][worker.worker].write_deliver_at(
                worker.node as u32,
                worker.device.kind,
                std::slice::from_ref(&buffer),
            );
            self.inflight[worker.node][worker.worker].push(Arc::clone(&buffer));
            self.inbox.push_back(Msg::Exec { worker, buffer });
        }
    }
}

/// Retire every slot whose connection failed since the last engine call
/// (graph variant of [`reap`]).
fn reap_graph<C: Clock, W: WeightProvider>(
    engine: &mut Engine<C, W>,
    drv: &mut GraphLockstepDriver,
    deaths: &mut u32,
) {
    for node in 0..drv.slots.len() {
        for slot in 0..drv.slots[node].len() {
            if !drv.slots[node][slot].open && !drv.dead[node][slot] {
                drv.dead[node][slot] = true;
                *deaths += 1;
                let inflight = unwrap_inflight(std::mem::take(&mut drv.inflight[node][slot]));
                engine.worker_died(node, slot, inflight, drv);
            }
        }
    }
}

/// Run a replicated-filter DAG over TCP workers in lockstep deterministic
/// mode. `workers[f]` holds the connections serving filter `f`; seeds are
/// `(filter, buffer)` pairs entering that filter's input queue. Each
/// filter's workers request only from their own per-edge input stream
/// (ODDS/DQAA/DBSA act per edge), completions at filter *i* are routed to
/// filter *i+1* by the graph's routing rule, and buffers with no matching
/// out-edge leave the run as outputs. Single-filter runs should use
/// [`run_deterministic`], whose wire traffic stays byte-identical to the
/// pre-graph protocol.
pub fn run_graph_deterministic<W: WeightProvider>(
    cfg: NetConfig,
    graph: &crate::graph::DataflowGraph,
    workers: Vec<Vec<NetWorkerConn>>,
    seeds: Vec<(usize, DataBuffer)>,
    weights: W,
) -> io::Result<NetGraphOutcome> {
    run_graph_deterministic_with(cfg, graph, workers, seeds, weights, &mut |_, _, _| None)
}

/// [`run_graph_deterministic`] with a coordinator-side emission hook.
///
/// `emit(filter, kind, completed)` runs once per completion. `None` keeps
/// the default routing: worker-echoed recirculated buffers go over the
/// filter's feedback edge and the completed buffer forwards down the
/// graph. `Some(emission)` overrides both — the hook's feedback/forward
/// buffers are routed instead and the worker's recirculated copies are
/// ignored. This is how application semantics that live at the
/// coordinator (e.g. NBIA's hypothesis test deciding recirculation) drive
/// a DAG whose workers model only the compute cost.
pub fn run_graph_deterministic_with<W: WeightProvider>(
    cfg: NetConfig,
    graph: &crate::graph::DataflowGraph,
    workers: Vec<Vec<NetWorkerConn>>,
    seeds: Vec<(usize, DataBuffer)>,
    weights: W,
    emit: &mut dyn FnMut(usize, DeviceKind, &DataBuffer) -> Option<GraphEmission>,
) -> io::Result<NetGraphOutcome> {
    assert_eq!(
        workers.len(),
        graph.n_filters(),
        "one worker connection set per graph filter"
    );
    let hard_deadline = Instant::now() + cfg.deadline;
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let mut drv = GraphLockstepDriver {
        inbox: VecDeque::new(),
        slots: Vec::with_capacity(workers.len()),
        inflight: Vec::new(),
        dead: Vec::new(),
    };
    for (f, conns) in workers.into_iter().enumerate() {
        let node = engine.add_node();
        debug_assert_eq!(node, f, "engine nodes must mirror filter ids");
        engine.set_reader_scope(f, vec![f]);
        let mut ios = Vec::with_capacity(conns.len());
        for (i, conn) in conns.into_iter().enumerate() {
            engine.add_worker(f, conn.device);
            conn.stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            conn.stream.set_nodelay(true).ok();
            ios.push(SlotIo::new(conn.stream, sever_for(&cfg.drops, f, i)));
        }
        assert!(!ios.is_empty(), "filter {f} has no worker connections");
        drv.inflight.push(vec![Vec::new(); ios.len()]);
        drv.dead.push(vec![false; ios.len()]);
        drv.slots.push(ios);
    }
    for (f, ios) in drv.slots.iter_mut().enumerate() {
        for (i, slot) in ios.iter_mut().enumerate() {
            let hello = Frame::Hello {
                node: f as u32,
                slot: i as u32,
            };
            slot.write(&hello);
            if !slot.open {
                continue;
            }
            match slot.read_frame(hard_deadline) {
                Ok(echo) if echo == hello => {}
                _ => {
                    let _ = slot.stream.shutdown(Shutdown::Both);
                    slot.open = false;
                }
            }
        }
    }
    for (f, b) in seeds {
        engine.seed_reader(f, b);
    }

    let rec = cfg.recorder.clone();
    let mut cursors = crate::graph::RoutingCursors::new(graph);
    let mut outputs = Vec::new();
    let mut deaths = 0u32;
    reap_graph(&mut engine, &mut drv, &mut deaths);
    for w in engine.worker_refs() {
        if !drv.dead[w.node][w.worker] {
            engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
        }
    }

    let mut dispatch_order = Vec::new();
    let mut tick = 0u64;
    loop {
        reap_graph(&mut engine, &mut drv, &mut deaths);
        let Some(msg) = drv.inbox.pop_front() else {
            break;
        };
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                if drv.dead[from.node][from.worker] || !drv.slots[from.node][from.worker].open {
                    continue; // the request died with its connection
                }
                match drv.slots[from.node][from.worker].read_frame(hard_deadline) {
                    Ok(Frame::Request {
                        req_id: echoed_id, ..
                    }) if echoed_id == req_id => {
                        let buffer = engine.answer_request(reader, from.device.kind);
                        engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let _ = drv.slots[from.node][from.worker]
                            .stream
                            .shutdown(Shutdown::Both);
                        drv.slots[from.node][from.worker].open = false;
                    }
                }
            }
            Msg::Exec { worker, buffer } => {
                if drv.dead[worker.node][worker.worker]
                    || !drv.slots[worker.node][worker.worker].open
                {
                    continue; // already re-homed by reap
                }
                let io = &mut drv.slots[worker.node][worker.worker];
                let completion = io.read_frame(hard_deadline).and_then(|first| {
                    let second = io.read_frame(hard_deadline)?;
                    Ok((first, second))
                });
                match completion {
                    Ok((
                        Frame::CompleteAt {
                            filter,
                            buffer: done,
                            proc_ns: _,
                            span,
                            recirculated,
                        },
                        Frame::BatchDone,
                    )) if done.id == buffer.id && filter as usize == worker.node => {
                        drv.inflight[worker.node][worker.worker].retain(|b| b.id != done.id);
                        dispatch_order.push((worker.node, worker.device.kind, done.id.0));
                        // Charge the modeled time, as in the single-filter
                        // lockstep driver, so DQAA inputs match the other
                        // backends bit-for-bit.
                        let proc =
                            SimDuration(modeled_proc_ns(buffer.as_ref(), worker.device.kind));
                        let ts = clock.now().as_nanos();
                        let dev = DeviceRef::device(worker.device);
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteStart {
                                buffer: done.id.0,
                                level: done.level,
                            },
                        );
                        rec.record(
                            ts,
                            dev,
                            EventKind::RemoteFinish {
                                buffer: done.id.0,
                                level: done.level,
                                proc_ns: span.end_ns.saturating_sub(span.start_ns),
                            },
                        );
                        engine.task_finished(worker.node, worker.worker, &done, proc);
                        let (feedback, forward) = match emit(worker.node, worker.device.kind, &done)
                        {
                            Some(e) => (e.feedback, e.forward),
                            // Default routing: worker recirculated copies
                            // are feedback; a completion that produced
                            // any is a feedback-only emission (the other
                            // backends' recirculating filters forward
                            // nothing), a clean completion forwards.
                            None if recirculated.is_empty() => (Vec::new(), vec![done]),
                            None => (recirculated, Vec::new()),
                        };
                        for r in feedback {
                            match graph.feedback_edge(worker.node) {
                                Some(ei) => {
                                    let to = graph.edge(ei).to;
                                    engine.deliver_edge(ei as u32, to, r, &mut drv);
                                }
                                None => engine.recirculate(worker.node, r, &mut drv),
                            }
                        }
                        for b in forward {
                            let targets = graph.route_forward(worker.node, b.level, &mut cursors);
                            match targets.split_last() {
                                None => outputs.push(b),
                                Some((&last, rest)) => {
                                    for &ei in rest {
                                        let to = graph.edge(ei).to;
                                        engine.deliver_edge(ei as u32, to, b.clone(), &mut drv);
                                    }
                                    let to = graph.edge(last).to;
                                    engine.deliver_edge(last as u32, to, b, &mut drv);
                                }
                            }
                        }
                        engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
                    }
                    Ok(_) | Err(_) => {
                        let io = &mut drv.slots[worker.node][worker.worker];
                        let _ = io.stream.shutdown(Shutdown::Both);
                        io.open = false;
                    }
                }
            }
        }
    }

    for ios in drv.slots.iter_mut() {
        shutdown_slots(ios);
    }
    Ok(NetGraphOutcome {
        assigned: engine.tasks_by_node().clone(),
        dispatch_order,
        outputs,
        edge_delivered: engine.edge_delivered().clone(),
        total: engine.total_done(),
        deaths,
    })
}

// ----------------------------------------------------------- concurrent

/// The concurrent coordinator's socket layer, selected by
/// [`NetConfig::path`]: blocking per-slot writes with reader threads, or
/// the non-blocking [`Reactor`]. Everything above this enum — run loops,
/// timers, heartbeats, membership, reaps — is shared between the paths.
// One NetIo exists per rig, so the Reactor-vs-Vec size gap is a
// non-issue — boxing would only add a pointer hop to the hot path.
#[allow(clippy::large_enum_variant)]
enum NetIo {
    Threads(Vec<SlotIo>),
    Event(Reactor),
}

impl NetIo {
    fn len(&self) -> usize {
        match self {
            NetIo::Threads(slots) => slots.len(),
            NetIo::Event(r) => r.len(),
        }
    }

    /// Is the slot's write side still usable?
    fn open(&self, slot: usize) -> bool {
        match self {
            NetIo::Threads(slots) => slots[slot].open,
            NetIo::Event(r) => r.open(slot),
        }
    }

    fn write_frame(&mut self, slot: usize, frame: &Frame) {
        match self {
            NetIo::Threads(slots) => slots[slot].write(frame),
            NetIo::Event(r) => r.send(slot, frame),
        }
    }

    fn write_deliver(&mut self, slot: usize, kind: DeviceKind, buffers: &[Arc<DataBuffer>]) {
        match self {
            NetIo::Threads(slots) => slots[slot].write_deliver(kind, buffers),
            NetIo::Event(r) => r.send_deliver(slot, kind, buffers),
        }
    }

    /// Tear a slot down in both directions (kill/sever path).
    fn sever(&mut self, slot: usize) {
        match self {
            NetIo::Threads(slots) => {
                if slots[slot].open {
                    let _ = slots[slot].stream.shutdown(Shutdown::Both);
                    slots[slot].open = false;
                }
            }
            NetIo::Event(r) => r.sever(slot),
        }
    }

    /// Graceful half-close for a drained slot: `Shutdown` frame, then
    /// close the write side.
    fn graceful_close(&mut self, slot: usize) {
        match self {
            NetIo::Threads(slots) => {
                if slots[slot].open {
                    slots[slot].write(&Frame::Shutdown);
                    let _ = slots[slot].stream.shutdown(Shutdown::Write);
                    slots[slot].open = false;
                }
            }
            NetIo::Event(r) => r.graceful_close(slot),
        }
    }
}

/// Concurrent driver: frames go out immediately; timeouts live in a heap
/// keyed by wall-clock fire time.
struct ConcurrentDriver {
    net: NetIo,
    inflight: Vec<Vec<Arc<DataBuffer>>>,
    /// `(fire_ns, slot, req_id)` min-heap on the shared wall clock.
    timers: BinaryHeap<Reverse<(u64, usize, u64)>>,
    batch_limit: usize,
}

impl Transport for ConcurrentDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.net.write_frame(
            from.worker,
            &Frame::Request {
                reader: reader as u32,
                req_id,
            },
        );
    }

    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        self.timers
            .push(Reverse((fire_at.as_nanos(), worker.worker, req_id)));
    }
}

impl Executor for ConcurrentDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        self.batch_limit
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        // The wire frame and the inflight table share one allocation per
        // buffer (the old path cloned the payload for each).
        let batch: Vec<Arc<DataBuffer>> = batch.into_iter().map(Arc::new).collect();
        self.net
            .write_deliver(worker.worker, worker.device.kind, &batch);
        self.inflight[worker.worker].extend(batch);
    }
}

fn kill_slot<C: Clock, W: WeightProvider>(
    engine: &mut Engine<C, W>,
    drv: &mut ConcurrentDriver,
    dead: &mut [bool],
    deaths: &mut u32,
    slot: usize,
) {
    if dead[slot] {
        return;
    }
    dead[slot] = true;
    *deaths += 1;
    drv.net.sever(slot);
    let inflight = unwrap_inflight(std::mem::take(&mut drv.inflight[slot]));
    engine.worker_died(0, slot, inflight, drv);
}

/// Shared live state of a concurrent (wall-clock) run: the engine, the
/// socket driver, the reader threads feeding the [`Pump`] channel, and
/// per-slot health bookkeeping. Built by [`concurrent_setup`]; the two
/// event loops ([`run_concurrent`], [`run_concurrent_load`]) differ only
/// in where work comes from (seeded up front vs. an arrival schedule
/// gated by admission control).
/// Where [`Pump`] events come from. On the threaded path, reader threads
/// and the acceptor feed an mpsc channel; on the event-loop path the
/// reactor inside [`NetIo::Event`] produces them directly and this holds
/// only the acceptor-less marker.
enum PumpSource {
    Threads {
        rx: mpsc::Receiver<Pump>,
        /// Retained sender so reader threads for workers that join
        /// *mid-run* can feed the same channel (the run ends by
        /// deadline/quiescence, never by channel disconnect).
        tx: mpsc::Sender<Pump>,
        readers: Vec<std::thread::JoinHandle<()>>,
    },
    Event,
}

struct ConcurrentRig<W: WeightProvider> {
    wall: WallClock,
    engine: Engine<WallClock, W>,
    node: usize,
    drv: ConcurrentDriver,
    pump: PumpSource,
    dead: Vec<bool>,
    deaths: u32,
    last_seen: Vec<Instant>,
    pending_procs: Vec<Vec<SimDuration>>,
    /// Events handled since the last failed-write sweep; the sweep is
    /// O(slots) so it runs every [`REAP_EVERY`] events instead of every
    /// event (and on every pump timeout, so a quiet run still reaps
    /// within one wait budget).
    events_since_reap: u32,
}

/// Failed-write sweep cadence, in pumped events. Bounds detection latency
/// to a sub-millisecond burst under load while keeping the per-event cost
/// of the sweep amortized O(1).
const REAP_EVERY: u32 = 64;

/// Start the reader thread for one connection's read half, feeding the
/// shared [`Pump`] channel. `dec` is the connection's handshake decoder:
/// a handshake read can buffer bytes past its own reply (a coalesced
/// heartbeat, or the front half of one), so the reader must continue
/// from that decoder state — a fresh decoder would drop the buffered
/// frames and desynchronize on any partial one.
fn spawn_reader(
    slot: usize,
    mut stream: TcpStream,
    tx: mpsc::Sender<Pump>,
    mut dec: FrameDecoder,
) -> std::thread::JoinHandle<()> {
    stream.set_read_timeout(None).ok();
    std::thread::Builder::new()
        .name(format!("anthill-net-rx-{slot}"))
        .spawn(move || {
            let mut chunk = [0u8; 64 * 1024];
            // Flush frames the handshake already buffered whole.
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => {
                        if tx.send(Pump::Frame(slot, f)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        let _ = tx.send(Pump::Closed(slot));
                        return;
                    }
                }
            }
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => {
                        let _ = tx.send(Pump::Closed(slot));
                        return;
                    }
                    Ok(n) => {
                        dec.feed(&chunk[..n]);
                        loop {
                            match dec.next_frame() {
                                Ok(Some(f)) => {
                                    if tx.send(Pump::Frame(slot, f)).is_err() {
                                        return;
                                    }
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    let _ = tx.send(Pump::Closed(slot));
                                    return;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        let _ = tx.send(Pump::Closed(slot));
                        return;
                    }
                }
            }
        })
        .expect("spawn net reader thread")
}

/// Accept elastic joiners in the background, handing raw connections to
/// the main loop via the [`Pump`] channel. Polls so the `stop` flag can
/// end the thread at run teardown.
fn spawn_acceptor(
    listener: TcpListener,
    tx: mpsc::Sender<Pump>,
    stop: Arc<AtomicBool>,
) -> io::Result<std::thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name("anthill-net-accept".into())
        .spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    if tx.send(Pump::Incoming(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        })
        .map_err(io::Error::other)
}

/// Answer an unknown or unwanted peer with a typed [`Frame::JoinRejected`]
/// before closing, so the remote side sees the reason instead of a silent
/// hangup.
fn reject_peer(stream: &mut TcpStream, reason: &str) {
    use std::io::Write as _;
    let _ = stream.write_all(&encode_frame(&Frame::JoinRejected {
        reason: reason.to_string(),
    }));
    let _ = stream.shutdown(Shutdown::Both);
}

/// Establish every connection, perform the handshake, and start one
/// reader thread per socket, all feeding one channel; mpsc ordering
/// guarantees a slot's buffered completions are seen before its `Closed`
/// marker. Slots that fail the handshake are reaped as dead before the
/// rig is returned.
fn concurrent_setup<W: WeightProvider>(
    cfg: &NetConfig,
    workers: Vec<NetWorkerConn>,
    weights: W,
    hard_deadline: Instant,
) -> io::Result<ConcurrentRig<W>> {
    let wall = WallClock::start();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: cfg.recovery,
        },
        wall.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    // The Hello handshake always runs on blocking sockets; the slots are
    // then handed to the configured pump (reader threads or the reactor),
    // each continuing from its handshake decoder state so frames (or
    // frame fragments) buffered behind the Hello echo are not lost.
    let mut slots: Vec<SlotIo> = Vec::with_capacity(workers.len());
    let mut read_halves = Vec::with_capacity(workers.len());
    let threads = cfg.path == NetPath::Threads;
    for (i, conn) in workers.into_iter().enumerate() {
        engine.add_worker(node, conn.device);
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        conn.stream.set_nodelay(true).ok();
        if threads {
            read_halves.push(conn.stream.try_clone()?);
        }
        slots.push(SlotIo::new(conn.stream, sever_for(&cfg.drops, node, i)));
    }
    assert!(!slots.is_empty(), "no worker connections configured");
    handshake(&mut slots, hard_deadline);

    let n_slots = slots.len();
    let (net, pump) = if threads {
        let (tx, rx) = mpsc::channel::<Pump>();
        let mut readers = Vec::new();
        for (slot, stream) in read_halves.into_iter().enumerate() {
            let dec = std::mem::replace(&mut slots[slot].dec, FrameDecoder::new());
            readers.push(spawn_reader(slot, stream, tx.clone(), dec));
        }
        (
            NetIo::Threads(slots),
            PumpSource::Threads { rx, tx, readers },
        )
    } else {
        let mut reactor = Reactor::new()?;
        for io_slot in slots {
            let open = io_slot.open;
            let slot = reactor.register(
                io_slot.stream,
                io_slot.dec,
                io_slot.sever_after,
                io_slot.frames_sent,
            )?;
            if !open {
                reactor.sever(slot);
            }
        }
        (NetIo::Event(reactor), PumpSource::Event)
    };
    let drv = ConcurrentDriver {
        net,
        inflight: vec![Vec::new(); n_slots],
        timers: BinaryHeap::new(),
        batch_limit: cfg.batch_limit.max(1),
    };

    let mut rig = ConcurrentRig {
        wall,
        engine,
        node,
        drv,
        pump,
        dead: vec![false; n_slots],
        deaths: 0,
        last_seen: vec![Instant::now(); n_slots],
        pending_procs: vec![Vec::new(); n_slots],
        events_since_reap: 0,
    };
    for slot in 0..n_slots {
        if !rig.drv.net.open(slot) {
            rig.kill(slot);
        }
    }
    Ok(rig)
}

impl<W: WeightProvider> ConcurrentRig<W> {
    fn kill(&mut self, slot: usize) {
        kill_slot(
            &mut self.engine,
            &mut self.drv,
            &mut self.dead,
            &mut self.deaths,
            slot,
        );
    }

    /// Kick every live worker's requester, as the sequential driver does.
    fn kick_live_workers(&mut self) {
        for w in self.engine.worker_refs() {
            if !self.dead[w.worker] {
                self.engine
                    .data_arrived(w.node, w.worker, u64::MAX, None, &mut self.drv);
            }
        }
    }

    /// Fire every request timeout whose wall-clock deadline has passed.
    fn fire_due_timers(&mut self) {
        let now_ns = self.wall.now().as_nanos();
        while let Some(&Reverse((fire, slot, req_id))) = self.drv.timers.peek() {
            if fire > now_ns {
                break;
            }
            self.drv.timers.pop();
            self.engine
                .request_timed_out(0, slot, req_id, &mut self.drv);
        }
    }

    /// Declare silent workers dead.
    fn check_heartbeats(&mut self, timeout: Option<Duration>) {
        if let Some(hb) = timeout {
            for slot in 0..self.dead.len() {
                if !self.dead[slot] && self.last_seen[slot].elapsed() > hb {
                    self.kill(slot);
                }
            }
        }
    }

    fn all_dead(&self) -> bool {
        self.dead.iter().all(|&d| d)
    }

    /// Sleep bound for the channel wait: the next request timeout, capped
    /// at `cap` and floored at 1 ms so a just-missed timer cannot spin.
    fn wait_budget(&self, cap: Duration) -> Duration {
        let mut wait = cap;
        if let Some(&Reverse((fire, _, _))) = self.drv.timers.peek() {
            let until = Duration::from_nanos(fire.saturating_sub(self.wall.now().as_nanos()));
            wait = wait.min(until.max(Duration::from_millis(1)));
        }
        wait
    }

    /// Retire slots whose writes failed inside the engine callbacks.
    fn reap_failed_writes(&mut self) {
        self.events_since_reap = 0;
        for slot in 0..self.dead.len() {
            if !self.drv.net.open(slot) && !self.dead[slot] {
                self.kill(slot);
            }
        }
    }

    /// Per-event reap hook: the full sweep only every [`REAP_EVERY`]
    /// events — scanning every slot after every frame was O(slots) per
    /// event, a real cost at 1000-worker fan-in.
    fn maybe_reap_failed_writes(&mut self) {
        self.events_since_reap += 1;
        if self.events_since_reap >= REAP_EVERY {
            self.reap_failed_writes();
        }
    }

    /// Fetch the next [`Pump`] event from whichever pump is configured,
    /// waiting at most `wait`. `None` is a timeout — the caller loops. A
    /// disconnected threaded channel (all readers gone) kills every slot,
    /// exactly as the inline handling used to.
    fn next_event(&mut self, wait: Duration) -> Option<Pump> {
        enum Fetched {
            Ev(Pump),
            Timeout,
            Disconnected,
        }
        let fetched = match &mut self.pump {
            PumpSource::Threads { rx, .. } => match rx.recv_timeout(wait) {
                Ok(ev) => Fetched::Ev(ev),
                Err(mpsc::RecvTimeoutError::Timeout) => Fetched::Timeout,
                Err(mpsc::RecvTimeoutError::Disconnected) => Fetched::Disconnected,
            },
            PumpSource::Event => match &mut self.drv.net {
                NetIo::Event(r) => r.pump(wait).map(Fetched::Ev).unwrap_or(Fetched::Timeout),
                NetIo::Threads(_) => unreachable!("event pump requires the reactor net path"),
            },
        };
        match fetched {
            Fetched::Ev(ev) => Some(ev),
            Fetched::Timeout => None,
            Fetched::Disconnected => {
                for slot in 0..self.dead.len() {
                    self.kill(slot);
                }
                None
            }
        }
    }

    /// Start accepting elastic joiners: a background acceptor thread on
    /// the threaded path, a poller registration on the event loop. The
    /// returned flag stops the acceptor thread at teardown (always
    /// returned so teardown code is path-independent; the event loop
    /// ignores it).
    fn attach_listener(&mut self, listener: TcpListener) -> io::Result<Arc<AtomicBool>> {
        let stop = Arc::new(AtomicBool::new(false));
        match (&mut self.pump, &mut self.drv.net) {
            (PumpSource::Threads { tx, readers, .. }, _) => {
                readers.push(spawn_acceptor(listener, tx.clone(), Arc::clone(&stop))?);
            }
            (PumpSource::Event, NetIo::Event(r)) => r.attach_listener(listener)?,
            (PumpSource::Event, NetIo::Threads(_)) => {
                unreachable!("event pump requires the reactor net path")
            }
        }
        Ok(stop)
    }

    /// Install an established connection as a brand-new worker slot: grow
    /// every per-slot table, start its reader thread, and register the
    /// slot with the engine (`worker_joined` event, DQAA warm-up window,
    /// immediate request pump).
    fn install_slot(&mut self, io_slot: SlotIo, device: DeviceId) -> io::Result<usize> {
        let slot = self.drv.net.len();
        let mut io_slot = io_slot;
        // The join/Hello handshake may have buffered bytes past its reply;
        // the pump (reader thread or reactor) continues from that decoder
        // state.
        match (&mut self.pump, &mut self.drv.net) {
            (PumpSource::Threads { tx, readers, .. }, NetIo::Threads(slots)) => {
                let read_half = io_slot.stream.try_clone()?;
                let dec = std::mem::replace(&mut io_slot.dec, FrameDecoder::new());
                slots.push(io_slot);
                readers.push(spawn_reader(slot, read_half, tx.clone(), dec));
            }
            (PumpSource::Event, NetIo::Event(r)) => {
                let registered = r.register(
                    io_slot.stream,
                    io_slot.dec,
                    io_slot.sever_after,
                    io_slot.frames_sent,
                )?;
                debug_assert_eq!(registered, slot, "reactor slot must mirror the rig slot");
            }
            _ => unreachable!("pump source and net path always match"),
        }
        self.drv.inflight.push(Vec::new());
        self.dead.push(false);
        self.last_seen.push(Instant::now());
        self.pending_procs.push(Vec::new());
        let joined = self.engine.join_worker(self.node, device, &mut self.drv);
        debug_assert_eq!(joined, slot, "engine slot must mirror the io slot");
        Ok(slot)
    }

    /// First-contact protocol on an accepted connection: a valid `Join`
    /// admits the peer as a new worker slot (the `JoinAck` carries its
    /// slot id); anything else — wrong node, wrong first frame, garbage —
    /// is answered with a typed [`Frame::JoinRejected`] before the socket
    /// closes, never a silent drop.
    fn handle_incoming(
        &mut self,
        stream: TcpStream,
        drops: &[ConnectionDropSpec],
    ) -> io::Result<usize> {
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        stream.set_nodelay(true).ok();
        let mut first = SlotIo::new(stream, None);
        let deadline = Instant::now() + Duration::from_secs(2);
        match first.read_frame(deadline) {
            Ok(Frame::Join { node: 0, kind }) => {
                let slot = self.drv.net.len();
                first.write(&Frame::JoinAck {
                    node: self.node as u32,
                    slot: slot as u32,
                });
                if !first.open {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "joiner hung up before JoinAck",
                    ));
                }
                first.sever_after = sever_for(drops, self.node, slot);
                let device = DeviceId {
                    node: self.node,
                    kind,
                    index: slot,
                };
                self.install_slot(first, device)
            }
            Ok(Frame::Join { node, .. }) => {
                reject_peer(&mut first.stream, &format!("unknown node {node}"));
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("join for unknown node {node}"),
                ))
            }
            Ok(_) => {
                reject_peer(
                    &mut first.stream,
                    "expected Join as the first frame of a dynamic connection",
                );
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected first frame on a dynamic connection",
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Admit a pool-supplied, pre-connected worker (autoscaler grow path):
    /// run the `Hello` handshake inline, then install the slot.
    fn admit_conn(
        &mut self,
        conn: NetWorkerConn,
        drops: &[ConnectionDropSpec],
    ) -> io::Result<usize> {
        let slot = self.drv.net.len();
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        conn.stream.set_nodelay(true).ok();
        let mut io_slot = SlotIo::new(conn.stream, sever_for(drops, self.node, slot));
        let hello = Frame::Hello {
            node: self.node as u32,
            slot: slot as u32,
        };
        io_slot.write(&hello);
        let deadline = Instant::now() + Duration::from_secs(2);
        match io_slot.read_frame(deadline) {
            Ok(echo) if echo == hello => {}
            _ => {
                let _ = io_slot.stream.shutdown(Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "grown worker failed the Hello handshake",
                ));
            }
        }
        self.install_slot(io_slot, conn.device)
    }

    /// Gracefully retire slots whose drain has completed: the engine has
    /// already recorded `worker_left`, so the socket gets a `Shutdown`
    /// and the slot is closed without touching the death/recovery path.
    /// Returns how many drains finished on this call.
    fn reap_drained(&mut self) -> u32 {
        let mut released = 0;
        for slot in 0..self.dead.len() {
            if !self.dead[slot]
                && self.engine.worker_draining(self.node, slot)
                && !self.engine.worker_alive(self.node, slot)
            {
                self.dead[slot] = true;
                released += 1;
                self.drv.net.graceful_close(slot);
            }
        }
        released
    }

    /// Handle one `Complete` frame: retire the in-flight entry, re-stamp
    /// the worker span onto the coordinator clock, credit the engine, and
    /// recirculate. Returns how many buffers were recirculated (new
    /// expected completions).
    #[allow(clippy::too_many_arguments)]
    fn handle_complete(
        &mut self,
        rec: &Recorder,
        slot: usize,
        buffer: DataBuffer,
        proc_ns: u64,
        span_ns: u64,
        recirculated: Vec<DataBuffer>,
        dispatch_order: &mut Vec<(DeviceKind, u64)>,
    ) -> u64 {
        self.drv.inflight[slot].retain(|b| b.id != buffer.id);
        let device = self.engine.worker_device(0, slot);
        dispatch_order.push((device.kind, buffer.id.0));
        let ts = self.wall.now().as_nanos();
        let dev = DeviceRef::device(device);
        rec.record(
            ts,
            dev,
            EventKind::RemoteStart {
                buffer: buffer.id.0,
                level: buffer.level,
            },
        );
        rec.record(
            ts,
            dev,
            EventKind::RemoteFinish {
                buffer: buffer.id.0,
                level: buffer.level,
                proc_ns: span_ns,
            },
        );
        let proc = SimDuration(proc_ns);
        self.engine.task_finished(0, slot, &buffer, proc);
        self.pending_procs[slot].push(proc);
        let n = recirculated.len() as u64;
        for r in recirculated {
            self.engine.recirculate(self.node, r, &mut self.drv);
        }
        n
    }

    /// Shut down live slots, stop the pump, and produce the outcome.
    fn finish(mut self, dispatch_order: Vec<(DeviceKind, u64)>) -> NetOutcome {
        let mut wire = WireStats::default();
        match &mut self.drv.net {
            NetIo::Threads(slots) => shutdown_slots(slots),
            NetIo::Event(r) => {
                r.shutdown_all();
                wire = r.stats();
            }
        }
        let ConcurrentRig {
            engine,
            drv,
            pump,
            deaths,
            ..
        } = self;
        drop(drv);
        if let PumpSource::Threads { rx, tx, readers } = pump {
            drop(rx);
            drop(tx);
            for handle in readers {
                let _ = handle.join();
            }
        }
        NetOutcome {
            assigned: engine.tasks_by().clone(),
            dispatch_order,
            total: engine.total_done(),
            deaths,
            wire,
        }
    }
}

/// Run `sources` through one engine node whose workers execute
/// concurrently behind the given connections, in wall-clock time with the
/// full recovery path armed (see the module docs). The run ends when every
/// seeded and recirculated buffer has completed exactly once, or errs at
/// the deadline.
pub fn run_concurrent<W: WeightProvider>(
    cfg: NetConfig,
    workers: Vec<NetWorkerConn>,
    sources: Vec<DataBuffer>,
    weights: W,
) -> io::Result<NetOutcome> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let mut rig = concurrent_setup(&cfg, workers, weights, hard_deadline)?;
    let mut expected = sources.len() as u64;
    for b in sources {
        rig.engine.seed_reader(rig.node, b);
    }
    rig.kick_live_workers();
    let rec = cfg.recorder.clone();
    let mut dispatch_order = Vec::new();

    while rig.engine.total_done() < expected {
        if Instant::now() >= hard_deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "net run deadline exceeded: {}/{} buffers done, {} worker(s) dead; {}",
                    rig.engine.total_done(),
                    expected,
                    rig.deaths,
                    rig.engine.debug_node_state(rig.node),
                ),
            ));
        }
        rig.fire_due_timers();
        rig.check_heartbeats(cfg.heartbeat_timeout);
        if rig.all_dead() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!(
                    "every worker died with {}/{} buffers done",
                    rig.engine.total_done(),
                    expected
                ),
            ));
        }
        let wait = rig.wait_budget(Duration::from_millis(25));
        let Some(event) = rig.next_event(wait) else {
            rig.reap_failed_writes();
            continue;
        };
        match event {
            Pump::Closed(slot) => rig.kill(slot),
            Pump::Frame(slot, frame) => {
                rig.last_seen[slot] = Instant::now();
                if rig.dead[slot] {
                    continue; // a late frame from a retired slot
                }
                match frame {
                    Frame::Request { reader, req_id } => {
                        let kind = rig.engine.worker_device(0, slot).kind;
                        let buffer = rig.engine.answer_request(reader as usize, kind);
                        rig.engine
                            .data_arrived(0, slot, req_id, buffer, &mut rig.drv);
                    }
                    Frame::Complete {
                        buffer,
                        proc_ns,
                        span,
                        recirculated,
                    } => {
                        let span_ns = span.end_ns.saturating_sub(span.start_ns);
                        expected += rig.handle_complete(
                            &rec,
                            slot,
                            buffer,
                            proc_ns,
                            span_ns,
                            recirculated,
                            &mut dispatch_order,
                        );
                    }
                    Frame::BatchDone => {
                        let procs = std::mem::take(&mut rig.pending_procs[slot]);
                        rig.engine.worker_idle(0, slot, &procs, &mut rig.drv);
                    }
                    // A `Join` on an already-established slot is a typed
                    // rejection, not silence: the peer learns it must open
                    // a fresh connection against an elastic run instead.
                    Frame::Join { .. } => {
                        rig.drv.net.write_frame(
                            slot,
                            &Frame::JoinRejected {
                                reason:
                                    "slot already joined; dynamic joins need a fresh connection"
                                        .to_string(),
                            },
                        );
                    }
                    // Heartbeats already refreshed `last_seen`; the rest
                    // are protocol noise a healthy worker never sends.
                    Frame::Heartbeat { .. }
                    | Frame::Hello { .. }
                    | Frame::Bye
                    | Frame::Deliver { .. }
                    | Frame::DeliverAt { .. }
                    | Frame::CompleteAt { .. }
                    | Frame::JoinAck { .. }
                    | Frame::JoinRejected { .. }
                    | Frame::Shutdown => {}
                }
            }
            // No acceptor runs in this mode; an incoming connection can
            // only mean a stray peer — reject it with the typed frame.
            Pump::Incoming(mut stream) => {
                reject_peer(&mut stream, "this run does not accept dynamic joins");
            }
        }
        rig.maybe_reap_failed_writes();
    }

    Ok(rig.finish(dispatch_order))
}

// -------------------------------------------------------------- elastic

/// A scheduled graceful drain for [`run_concurrent_elastic`]: once
/// `after_completions` buffers have finished, worker `slot` stops
/// receiving assignments, finishes its in-flight requests (bounded by
/// the recovery timeout path), and leaves with a `worker_left` event.
#[derive(Debug, Clone, Copy)]
pub struct DrainAt {
    /// Completion count that triggers the drain.
    pub after_completions: u64,
    /// Worker slot to drain.
    pub slot: usize,
}

/// Result of [`run_concurrent_elastic`].
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// The usual run outcome (assignment counts, completion order,
    /// deaths — graceful leaves are *not* deaths).
    pub outcome: NetOutcome,
    /// Workers admitted mid-run via the `Join`/`JoinAck` handshake.
    pub joins: u32,
    /// Workers that completed a graceful drain.
    pub drains: u32,
}

/// [`run_concurrent`] with elastic membership: `listener` accepts mid-run
/// `Join` handshakes (each admitted joiner becomes a fresh engine slot
/// with a cold DQAA window that warms up from 1, so it cannot stampede
/// the queue), and `drains` scripts graceful departures keyed on the
/// completion count. Invalid first frames on accepted connections are
/// answered with a typed [`Frame::JoinRejected`]. The schedule must keep
/// at least one worker assignable or the run aborts as fully dead.
pub fn run_concurrent_elastic<W: WeightProvider>(
    cfg: NetConfig,
    listener: TcpListener,
    drains: Vec<DrainAt>,
    workers: Vec<NetWorkerConn>,
    sources: Vec<DataBuffer>,
    weights: W,
) -> io::Result<ElasticOutcome> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let mut rig = concurrent_setup(&cfg, workers, weights, hard_deadline)?;
    let stop = rig.attach_listener(listener)?;
    let mut drains = drains;
    drains.sort_by_key(|d| d.after_completions);
    let mut next_drain = 0usize;
    let mut joins = 0u32;
    let mut drained = 0u32;

    let mut expected = sources.len() as u64;
    for b in sources {
        rig.engine.seed_reader(rig.node, b);
    }
    rig.kick_live_workers();
    let rec = cfg.recorder.clone();
    let mut dispatch_order = Vec::new();

    while rig.engine.total_done() < expected {
        if Instant::now() >= hard_deadline {
            stop.store(true, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "elastic net run deadline exceeded: {}/{} buffers done, {} join(s), {} worker(s) dead; {}; inflight={:?} dead={:?}",
                    rig.engine.total_done(),
                    expected,
                    joins,
                    rig.deaths,
                    rig.engine.debug_node_state(rig.node),
                    rig.drv.inflight.iter().map(|v| v.len()).collect::<Vec<_>>(),
                    rig.dead,
                ),
            ));
        }
        rig.fire_due_timers();
        rig.check_heartbeats(cfg.heartbeat_timeout);
        // Apply every drain whose completion threshold has been reached.
        while next_drain < drains.len()
            && rig.engine.total_done() >= drains[next_drain].after_completions
        {
            let slot = drains[next_drain].slot;
            next_drain += 1;
            if slot < rig.dead.len() && !rig.dead[slot] {
                rig.engine.drain_worker(rig.node, slot);
            }
        }
        drained += rig.reap_drained();
        if rig.all_dead() {
            stop.store(true, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!(
                    "every worker died or drained with {}/{} buffers done",
                    rig.engine.total_done(),
                    expected
                ),
            ));
        }
        let wait = rig.wait_budget(Duration::from_millis(25));
        let Some(event) = rig.next_event(wait) else {
            rig.reap_failed_writes();
            continue;
        };
        match event {
            Pump::Closed(slot) => rig.kill(slot),
            Pump::Incoming(stream) => {
                if rig.handle_incoming(stream, &cfg.drops).is_ok() {
                    joins += 1;
                }
            }
            Pump::Frame(slot, frame) => {
                rig.last_seen[slot] = Instant::now();
                if rig.dead[slot] {
                    continue; // a late frame from a retired slot
                }
                match frame {
                    Frame::Request { reader, req_id } => {
                        let kind = rig.engine.worker_device(0, slot).kind;
                        let buffer = rig.engine.answer_request(reader as usize, kind);
                        rig.engine
                            .data_arrived(0, slot, req_id, buffer, &mut rig.drv);
                    }
                    Frame::Complete {
                        buffer,
                        proc_ns,
                        span,
                        recirculated,
                    } => {
                        let span_ns = span.end_ns.saturating_sub(span.start_ns);
                        expected += rig.handle_complete(
                            &rec,
                            slot,
                            buffer,
                            proc_ns,
                            span_ns,
                            recirculated,
                            &mut dispatch_order,
                        );
                    }
                    Frame::BatchDone => {
                        let procs = std::mem::take(&mut rig.pending_procs[slot]);
                        rig.engine.worker_idle(0, slot, &procs, &mut rig.drv);
                    }
                    Frame::Join { .. } => {
                        rig.drv.net.write_frame(
                            slot,
                            &Frame::JoinRejected {
                                reason:
                                    "slot already joined; dynamic joins need a fresh connection"
                                        .to_string(),
                            },
                        );
                    }
                    Frame::Heartbeat { .. }
                    | Frame::Hello { .. }
                    | Frame::Bye
                    | Frame::Deliver { .. }
                    | Frame::DeliverAt { .. }
                    | Frame::CompleteAt { .. }
                    | Frame::JoinAck { .. }
                    | Frame::JoinRejected { .. }
                    | Frame::Shutdown => {}
                }
            }
        }
        rig.maybe_reap_failed_writes();
    }

    stop.store(true, Ordering::Relaxed);
    drained += rig.reap_drained();
    Ok(ElasticOutcome {
        outcome: rig.finish(dispatch_order),
        joins,
        drains: drained,
    })
}

// ------------------------------------------------------------ open loop

/// Per-task latency decomposition reported by [`run_concurrent_load`],
/// all in nanoseconds on the coordinator's clock. `e2e_ns` runs from the
/// task's *scheduled* arrival offset (so injector jitter shows up as
/// measured load, not as noise) to the completion frame; `service_ns` is
/// the worker-reported execution span; `queue_ns` is the remainder —
/// admission wait, ready-queue wait, and wire time.
#[derive(Debug, Clone, Copy)]
pub struct NetTaskTiming {
    /// Buffer id.
    pub buffer: u64,
    /// Time between scheduled arrival and execution start (e2e − service).
    pub queue_ns: u64,
    /// Worker-side execution span.
    pub service_ns: u64,
    /// Scheduled arrival to completion.
    pub e2e_ns: u64,
}

/// One queue-depth sample from an open-loop net run.
#[derive(Debug, Clone, Copy)]
pub struct NetQueueSample {
    /// Coordinator wall-clock nanoseconds since the run started.
    pub t_ns: u64,
    /// Buffers sitting in the engine's ready (reader) queue.
    pub ready: u64,
    /// Tasks waiting in the admission intake queue.
    pub intake: u64,
    /// Tasks admitted and not yet completed.
    pub inflight: u64,
}

/// Result of [`run_concurrent_load`].
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// The usual run outcome (assignment counts, completion order, deaths).
    pub outcome: NetOutcome,
    /// Admission counters at quiescence; `admitted + shed +
    /// deadline_dropped == generated` holds whenever the run returns `Ok`.
    pub admission: AdmissionCounters,
    /// Tasks that completed and produced a timing callback.
    pub completed: u64,
    /// Queue-depth time series on the `sample_every` cadence.
    pub queue_depth: Vec<NetQueueSample>,
    /// Workers admitted by the autoscaler (0 without autoscaling).
    pub scale_ups: u64,
    /// Graceful drains initiated by the autoscaler (0 without
    /// autoscaling).
    pub scale_downs: u64,
}

/// Autoscaling hookup for [`run_concurrent_load_autoscaled`]: the policy
/// decides from DQAA's own congestion signals (the sampled reader-queue
/// depth plus intake backlog, and the most recent end-to-end completion
/// latency); the pool supplies pre-connected workers on `Grow`, and
/// `Shrink` gracefully drains the highest assignable slot.
pub struct ElasticLoad<'a> {
    /// The watermark policy, consulted once per queue-depth sample.
    pub autoscaler: Autoscaler,
    /// Supplier of new worker connections; `None` means the pool is
    /// exhausted and the grow decision is dropped.
    pub pool: &'a mut dyn WorkerPool<Worker = NetWorkerConn>,
}

/// Open-loop variant of [`run_concurrent`]: instead of seeding every
/// source up front, tasks *arrive* on the wall-clock schedule `arrivals`
/// (nanosecond offsets from the run start, ascending) and pass through an
/// [`AdmissionController`] before reaching the engine.
///
/// `make_task(index, arrival_ns)` materialises the task for each arrival;
/// buffer ids must be unique across the schedule. Admitted tasks are
/// seeded live into the ready queue; under [`OverloadPolicy::Block`]
/// (see [`crate::engine::OverloadPolicy`]) a full intake stalls the
/// injector — the arrival index does not advance, modelling generator
/// back-pressure — while the shedding policies keep the schedule on time
/// and drop work instead, emitting `task_shed` /
/// `task_deadline_dropped` events through the configured recorder.
///
/// `on_complete` fires once per completed *admitted* task (recirculated
/// copies complete without a second callback, and without double-freeing
/// the admission slot). The run ends when the schedule is drained, the
/// intake is empty, and every seeded and recirculated buffer has
/// completed, or errs at the deadline.
#[allow(clippy::too_many_arguments)]
pub fn run_concurrent_load<W: WeightProvider>(
    cfg: NetConfig,
    admission: AdmissionConfig,
    workers: Vec<NetWorkerConn>,
    arrivals: &[u64],
    make_task: &mut dyn FnMut(u64, u64) -> DataBuffer,
    sample_every: Duration,
    weights: W,
    on_complete: &mut dyn FnMut(NetTaskTiming),
) -> io::Result<NetLoadReport> {
    run_concurrent_load_inner(
        cfg,
        admission,
        workers,
        arrivals,
        make_task,
        sample_every,
        weights,
        on_complete,
        None,
    )
}

/// [`run_concurrent_load`] with the pool autoscaled at run time: once per
/// queue-depth sample the [`Autoscaler`] inspects the congestion signals
/// and either admits a pool-supplied worker (Hello handshake + engine
/// join with a warm-up window) or gracefully drains one, never below the
/// policy's `min_workers`. Scale activity is reported in the
/// [`NetLoadReport`]'s `scale_ups`/`scale_downs`.
#[allow(clippy::too_many_arguments)]
pub fn run_concurrent_load_autoscaled<W: WeightProvider>(
    cfg: NetConfig,
    admission: AdmissionConfig,
    workers: Vec<NetWorkerConn>,
    arrivals: &[u64],
    make_task: &mut dyn FnMut(u64, u64) -> DataBuffer,
    sample_every: Duration,
    weights: W,
    on_complete: &mut dyn FnMut(NetTaskTiming),
    elastic: ElasticLoad<'_>,
) -> io::Result<NetLoadReport> {
    run_concurrent_load_inner(
        cfg,
        admission,
        workers,
        arrivals,
        make_task,
        sample_every,
        weights,
        on_complete,
        Some(elastic),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_concurrent_load_inner<W: WeightProvider>(
    cfg: NetConfig,
    admission: AdmissionConfig,
    workers: Vec<NetWorkerConn>,
    arrivals: &[u64],
    make_task: &mut dyn FnMut(u64, u64) -> DataBuffer,
    sample_every: Duration,
    weights: W,
    on_complete: &mut dyn FnMut(NetTaskTiming),
    mut elastic: Option<ElasticLoad<'_>>,
) -> io::Result<NetLoadReport> {
    let hard_deadline = Instant::now() + cfg.deadline;
    let mut rig = concurrent_setup(&cfg, workers, weights, hard_deadline)?;
    let mut ctl: AdmissionController<DataBuffer> = AdmissionController::new(
        admission,
        cfg.recorder.clone(),
        DeviceRef::node_scope(rig.node),
    );
    rig.kick_live_workers();
    let rec = cfg.recorder.clone();
    let sample_every = sample_every.max(Duration::from_micros(200));

    let mut dispatch_order = Vec::new();
    let mut samples: Vec<NetQueueSample> = Vec::new();
    let mut next_sample_ns = 0u64;
    // Scheduled arrival of tasks sitting in the admission intake.
    let mut queued_arrival: HashMap<u64, u64> = HashMap::new();
    // `(scheduled arrival, seed time)` of admitted, not-yet-completed tasks.
    let mut inflight_meta: HashMap<u64, (u64, u64)> = HashMap::new();
    // A task bounced with `Offer::Blocked`, waiting for intake space.
    let mut pending: Option<(u64, DataBuffer)> = None;
    let mut next = 0usize;
    let mut expected = 0u64;
    let mut completed = 0u64;
    // Autoscaler state: the most recent completion's e2e latency is the
    // policy's latency signal; scale counts feed the report.
    let mut last_e2e: Option<u64> = None;
    let mut scale_ups = 0u64;
    let mut scale_downs = 0u64;

    loop {
        if next >= arrivals.len()
            && pending.is_none()
            && ctl.queued() == 0
            && rig.engine.total_done() >= expected
        {
            break;
        }
        if Instant::now() >= hard_deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "net load run deadline exceeded: {}/{} arrivals injected, {}/{} done, {} worker(s) dead; {}",
                    next,
                    arrivals.len(),
                    rig.engine.total_done(),
                    expected,
                    rig.deaths,
                    rig.engine.debug_node_state(rig.node),
                ),
            ));
        }
        rig.fire_due_timers();
        rig.check_heartbeats(cfg.heartbeat_timeout);
        if rig.all_dead() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!(
                    "every worker died with {}/{} buffers done",
                    rig.engine.total_done(),
                    expected
                ),
            ));
        }

        // Admit intake entries freed by completions; expire overdue ones.
        let now_ns = rig.wall.now().as_nanos();
        let polled = ctl.poll(now_ns);
        for env in polled.expired {
            queued_arrival.remove(&env.buffer);
        }
        for env in polled.admitted {
            let arrival = queued_arrival.remove(&env.buffer).unwrap_or(now_ns);
            inflight_meta.insert(env.buffer, (arrival, now_ns));
            expected += 1;
            rig.engine.seed_live(rig.node, env.payload, &mut rig.drv);
        }

        // Inject every arrival that is due, a blocked task first.
        loop {
            let (arrival_ns, buf) = match pending.take() {
                Some(p) => p,
                None => {
                    if next >= arrivals.len() {
                        break;
                    }
                    let due = arrivals[next];
                    if due > rig.wall.now().as_nanos() {
                        break;
                    }
                    let buf = make_task(next as u64, due);
                    next += 1;
                    (due, buf)
                }
            };
            let offer_ns = rig.wall.now().as_nanos();
            let id = buf.id.0;
            let level = buf.level;
            match ctl.offer(offer_ns, id, level, buf) {
                Offer::Admitted(b) => {
                    inflight_meta.insert(id, (arrival_ns, offer_ns));
                    expected += 1;
                    rig.engine.seed_live(rig.node, b, &mut rig.drv);
                }
                Offer::Queued { shed } => {
                    queued_arrival.insert(id, arrival_ns);
                    if let Some(victim) = shed {
                        queued_arrival.remove(&victim.buffer);
                    }
                }
                Offer::ShedSelf(_) => {}
                Offer::Blocked(b) => {
                    // Back-pressure: the injector stalls until a
                    // completion frees an admission slot.
                    pending = Some((arrival_ns, b));
                    break;
                }
            }
        }

        // Queue-depth sample on its cadence; the autoscaler rides the
        // same cadence so its decisions are a pure function of the
        // sampled congestion signals.
        let now_ns = rig.wall.now().as_nanos();
        if now_ns >= next_sample_ns {
            let ready = rig.engine.reader_len(rig.node) as u64;
            let intake = ctl.queued() as u64;
            samples.push(NetQueueSample {
                t_ns: now_ns,
                ready,
                intake,
                inflight: ctl.inflight() as u64,
            });
            next_sample_ns = now_ns + sample_every.as_nanos() as u64;
            if let Some(el) = elastic.as_mut() {
                let depth = (ready + intake) as usize;
                let active = rig.engine.active_worker_count();
                match el.autoscaler.decide(now_ns, depth, last_e2e, active) {
                    Some(ScaleAction::Grow) => {
                        if let Some(conn) = el.pool.grow() {
                            if rig.admit_conn(conn, &cfg.drops).is_ok() {
                                scale_ups += 1;
                            }
                        }
                    }
                    Some(ScaleAction::Shrink) => {
                        let victim = (0..rig.dead.len()).rev().find(|&s| {
                            !rig.dead[s]
                                && rig.engine.worker_alive(rig.node, s)
                                && !rig.engine.worker_draining(rig.node, s)
                        });
                        if let Some(slot) = victim {
                            rig.engine.drain_worker(rig.node, slot);
                            scale_downs += 1;
                        }
                    }
                    None => {}
                }
            }
        }
        rig.reap_drained();

        // Wait for the next frame, bounded by the next timer, the next
        // scheduled arrival, and the sample cadence.
        let mut wait = rig.wait_budget(Duration::from_millis(25).min(sample_every));
        if pending.is_none() {
            if let Some(&due) = arrivals.get(next) {
                let until = Duration::from_nanos(due.saturating_sub(rig.wall.now().as_nanos()));
                wait = wait.min(until);
            }
        }
        let Some(event) = rig.next_event(wait) else {
            rig.reap_failed_writes();
            continue;
        };
        match event {
            Pump::Closed(slot) => rig.kill(slot),
            Pump::Frame(slot, frame) => {
                rig.last_seen[slot] = Instant::now();
                if rig.dead[slot] {
                    continue; // a late frame from a retired slot
                }
                match frame {
                    Frame::Request { reader, req_id } => {
                        let kind = rig.engine.worker_device(0, slot).kind;
                        let buffer = rig.engine.answer_request(reader as usize, kind);
                        rig.engine
                            .data_arrived(0, slot, req_id, buffer, &mut rig.drv);
                    }
                    Frame::Complete {
                        buffer,
                        proc_ns,
                        span,
                        recirculated,
                    } => {
                        let id = buffer.id.0;
                        let span_ns = span.end_ns.saturating_sub(span.start_ns);
                        expected += rig.handle_complete(
                            &rec,
                            slot,
                            buffer,
                            proc_ns,
                            span_ns,
                            recirculated,
                            &mut dispatch_order,
                        );
                        // First completion of an admitted task frees its
                        // admission slot and reports its latency split;
                        // recirculated copies find no entry and skip both.
                        if let Some((arrival, _seeded)) = inflight_meta.remove(&id) {
                            let finished_ns = rig.wall.now().as_nanos();
                            let e2e_ns = finished_ns.saturating_sub(arrival);
                            let service_ns = span_ns.min(e2e_ns);
                            completed += 1;
                            last_e2e = Some(e2e_ns);
                            on_complete(NetTaskTiming {
                                buffer: id,
                                queue_ns: e2e_ns - service_ns,
                                service_ns,
                                e2e_ns,
                            });
                            ctl.release();
                        }
                    }
                    Frame::BatchDone => {
                        let procs = std::mem::take(&mut rig.pending_procs[slot]);
                        rig.engine.worker_idle(0, slot, &procs, &mut rig.drv);
                    }
                    Frame::Join { .. } => {
                        rig.drv.net.write_frame(
                            slot,
                            &Frame::JoinRejected {
                                reason:
                                    "slot already joined; dynamic joins need a fresh connection"
                                        .to_string(),
                            },
                        );
                    }
                    Frame::Heartbeat { .. }
                    | Frame::Hello { .. }
                    | Frame::Bye
                    | Frame::Deliver { .. }
                    | Frame::DeliverAt { .. }
                    | Frame::CompleteAt { .. }
                    | Frame::JoinAck { .. }
                    | Frame::JoinRejected { .. }
                    | Frame::Shutdown => {}
                }
            }
            // The load harness scales through its worker pool, not the
            // wire; a stray incoming connection gets the typed rejection.
            Pump::Incoming(mut stream) => {
                reject_peer(&mut stream, "this run does not accept dynamic joins");
            }
        }
        rig.maybe_reap_failed_writes();
    }

    let admission = ctl.counters();
    let outcome = rig.finish(dispatch_order);
    Ok(NetLoadReport {
        outcome,
        admission,
        completed,
        queue_depth: samples,
        scale_ups,
        scale_downs,
    })
}
