//! The shared ready-buffer queue with per-device sorted views.
//!
//! Both ends of an ODDS stream, and the receiver side of DDWRR, keep a
//! single pool of queued data buffers plus one *view* per processor type,
//! sorted by the buffer's weight for that type (paper Sections 5.2–5.3).
//! Popping the best buffer for one device removes it from every view —
//! that removal is the heart of DBSA ("it removes the same buffer from all
//! other sorted queues").
//!
//! Complexity: each per-device view is a `BTreeMap` keyed by
//! `(weight, age)`, so `pop_best` and `best_weight` are O(log n) lookups
//! of the maximal key — no linear scan over the queued buffers. Insertion
//! and removal update the FIFO index plus every sorted view, also
//! O(log n) each. Ties on weight resolve to the oldest buffer.

use std::collections::{BTreeMap, HashMap};

use crate::buffer::{BufferId, DataBuffer};
use anthill_hetsim::DeviceKind;

/// Totally ordered f64 wrapper (NaN treated as the lowest weight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdWeight(pub(crate) f64);

impl Eq for OrdWeight {}
impl PartialOrd for OrdWeight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdWeight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = if self.0.is_nan() {
            f64::NEG_INFINITY
        } else {
            self.0
        };
        let b = if other.0.is_nan() {
            f64::NEG_INFINITY
        } else {
            other.0
        };
        a.partial_cmp(&b).expect("sanitized weights compare")
    }
}

#[derive(Debug, Clone)]
struct Entry {
    buffer: DataBuffer,
    /// Arrival sequence (FIFO order; also the deterministic tie-breaker).
    seq: u64,
    /// FIFO priority band (lower pops first; bands only affect FIFO order).
    band: u8,
    /// Weight per device kind, in `DeviceKind::ALL` order.
    weights: [f64; 2],
    /// Requesting thread tag, if any (ODDS request accounting).
    tag: Option<u64>,
}

/// A pool of ready buffers with FIFO and per-device sorted views.
///
/// ```
/// use anthill::buffer::{BufferId, DataBuffer};
/// use anthill::queue::SharedQueue;
/// use anthill_estimator::TaskParams;
/// use anthill_hetsim::{DeviceKind, NbiaCostModel};
///
/// let model = NbiaCostModel::paper_calibrated();
/// let tile = |id: u64, side: u32| DataBuffer {
///     id: BufferId(id),
///     params: TaskParams::nums(&[f64::from(side)]),
///     shape: model.tile(side),
///     level: u8::from(side > 32),
///     task: id,
/// };
/// let mut q = SharedQueue::new();
/// q.insert(tile(1, 32), [1.0, 1.0], None);   // [cpu weight, gpu weight]
/// q.insert(tile(2, 512), [0.03, 33.0], None);
/// // The GPU takes the 512² tile; the CPU view no longer offers it.
/// assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 2);
/// assert_eq!(q.pop_best(DeviceKind::Cpu).unwrap().0.id.0, 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedQueue {
    entries: HashMap<BufferId, Entry>,
    fifo: BTreeMap<(u8, u64), BufferId>,
    /// Per device kind: (weight, seq) -> buffer. Max key = best buffer;
    /// older buffers win weight ties (seq stored negated via `u64::MAX -`).
    sorted: [BTreeMap<(OrdWeight, u64), BufferId>; 2],
    next_seq: u64,
}

impl SharedQueue {
    /// An empty queue.
    pub fn new() -> SharedQueue {
        SharedQueue::default()
    }

    pub(crate) fn kind_index(kind: DeviceKind) -> usize {
        match kind {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
        }
    }

    /// Number of queued buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no buffers are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a buffer with its per-device weights. `tag` optionally
    /// records which worker thread's request fetched it.
    pub fn insert(&mut self, buffer: DataBuffer, weights: [f64; 2], tag: Option<u64>) {
        self.insert_banded(buffer, weights, tag, 0);
    }

    /// Insert with an explicit FIFO priority band: buffers in a lower band
    /// pop first in FIFO order regardless of arrival time. Used by readers
    /// to keep recirculated (recalculation) work ahead of not-yet-started
    /// tiles, modeling the demand-driven Start→Reader loop. Bands do not
    /// affect the weight-sorted views.
    pub fn insert_banded(
        &mut self,
        buffer: DataBuffer,
        weights: [f64; 2],
        tag: Option<u64>,
        band: u8,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = buffer.id;
        for (k, w) in weights.iter().enumerate() {
            self.sorted[k].insert((OrdWeight(*w), u64::MAX - seq), id);
        }
        self.fifo.insert((band, seq), id);
        let prev = self.entries.insert(
            id,
            Entry {
                buffer,
                seq,
                band,
                weights,
                tag,
            },
        );
        assert!(prev.is_none(), "duplicate buffer id {id:?}");
    }

    fn remove_entry(&mut self, id: BufferId) -> Option<(DataBuffer, Option<u64>)> {
        let e = self.entries.remove(&id)?;
        self.fifo.remove(&(e.band, e.seq));
        for (k, w) in e.weights.iter().enumerate() {
            self.sorted[k].remove(&(OrdWeight(*w), u64::MAX - e.seq));
        }
        Some((e.buffer, e.tag))
    }

    /// Pop the oldest buffer (DDFCFS order). Returns the buffer and its
    /// requesting-thread tag.
    pub fn pop_fifo(&mut self) -> Option<(DataBuffer, Option<u64>)> {
        let (&_, &id) = self.fifo.iter().next()?;
        self.remove_entry(id)
    }

    /// Pop the highest-weighted buffer for `kind` (DDWRR/ODDS order),
    /// removing it from every view.
    pub fn pop_best(&mut self, kind: DeviceKind) -> Option<(DataBuffer, Option<u64>)> {
        let k = Self::kind_index(kind);
        let (&_, &id) = self.sorted[k].iter().next_back()?;
        self.remove_entry(id)
    }

    /// Remove a specific buffer (e.g. chosen externally).
    pub fn remove(&mut self, id: BufferId) -> Option<(DataBuffer, Option<u64>)> {
        self.remove_entry(id)
    }

    /// Peek the weight of the best buffer for `kind`.
    pub fn best_weight(&self, kind: DeviceKind) -> Option<f64> {
        let k = Self::kind_index(kind);
        self.sorted[k].keys().next_back().map(|(w, _)| w.0)
    }

    /// Iterate over queued buffers in FIFO order.
    pub fn iter_fifo(&self) -> impl Iterator<Item = &DataBuffer> + '_ {
        self.fifo.values().map(move |id| &self.entries[id].buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::TaskShape;
    use anthill_simkit::SimDuration;

    fn buf(id: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_millis(1),
                gpu_kernel: SimDuration::from_millis(1),
                bytes_in: 100,
                bytes_out: 10,
            },
            level: 0,
            task: id,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = SharedQueue::new();
        for id in 0..5 {
            q.insert(buf(id), [1.0, 1.0], None);
        }
        let ids: Vec<u64> = (0..5).map(|_| q.pop_fifo().unwrap().0.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(q.pop_fifo().is_none());
    }

    #[test]
    fn pop_best_returns_highest_weight_per_device() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 33.0], None);
        q.insert(buf(2), [1.0, 1.0], None);
        q.insert(buf(3), [2.0, 0.5], None);
        assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 1);
        assert_eq!(q.pop_best(DeviceKind::Cpu).unwrap().0.id.0, 3);
        assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn popping_for_one_device_removes_from_all_views() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [9.0, 9.0], None);
        q.insert(buf(2), [1.0, 1.0], None);
        let (b, _) = q.pop_best(DeviceKind::Gpu).unwrap();
        assert_eq!(b.id.0, 1);
        // The CPU view must not still offer buffer 1.
        assert_eq!(q.pop_best(DeviceKind::Cpu).unwrap().0.id.0, 2);
        assert!(q.pop_best(DeviceKind::Cpu).is_none());
    }

    #[test]
    fn weight_ties_break_fifo() {
        let mut q = SharedQueue::new();
        for id in 0..4 {
            q.insert(buf(id), [5.0, 5.0], None);
        }
        let ids: Vec<u64> = (0..4)
            .map(|_| q.pop_best(DeviceKind::Gpu).unwrap().0.id.0)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lower_band_pops_first_in_fifo_only() {
        let mut q = SharedQueue::new();
        q.insert_banded(buf(1), [1.0, 1.0], None, 1);
        q.insert_banded(buf(2), [9.0, 9.0], None, 1);
        q.insert_banded(buf(3), [1.0, 1.0], None, 0); // arrives last, band 0
        assert_eq!(q.pop_fifo().unwrap().0.id.0, 3);
        assert_eq!(q.pop_fifo().unwrap().0.id.0, 1);
        // Sorted views ignore bands entirely.
        assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 2);
    }

    #[test]
    fn tags_round_trip() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 1.0], Some(42));
        let (_, tag) = q.pop_fifo().unwrap();
        assert_eq!(tag, Some(42));
    }

    #[test]
    fn nan_weight_sorts_last_not_panics() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [f64::NAN, f64::NAN], None);
        q.insert(buf(2), [1.0, 1.0], None);
        assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 2);
        assert_eq!(q.pop_best(DeviceKind::Gpu).unwrap().0.id.0, 1);
    }

    #[test]
    fn remove_specific_buffer() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 1.0], None);
        q.insert(buf(2), [2.0, 2.0], None);
        assert!(q.remove(BufferId(1)).is_some());
        assert!(q.remove(BufferId(1)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter_fifo().count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate buffer id")]
    fn duplicate_ids_rejected() {
        let mut q = SharedQueue::new();
        q.insert(buf(1), [1.0, 1.0], None);
        q.insert(buf(1), [1.0, 1.0], None);
    }
}
