//! Per-device buffer weights: the glue between the performance estimator
//! and the schedulers.
//!
//! DDWRR and ODDS order ready buffers by a per-device weight that reflects
//! how *suited* the buffer is to that device. We use the buffer's predicted
//! advantage on the device over its best alternative device (for the
//! paper's two device classes this is exactly the pairwise relative
//! speedup: the GPU queue is sorted by GPU-over-CPU speedup and the CPU
//! queue by its reciprocal). Only the resulting *ordering* matters, so
//! estimator error tolerance is high (paper Sections 4–5.2).

use crate::buffer::DataBuffer;
use anthill_estimator::{fnv1a64, DeviceClass, KnnEstimator, OnlineProfile};
use anthill_hetsim::{CopyMode, DeviceKind, GpuParams};

/// Engine state visible to a learned provider at decision time — the
/// contextual features of [`WeightProvider::decide`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecisionCtx {
    /// Node whose ready queue the buffer is entering.
    pub node: usize,
    /// Ready-queue depth at that node before this insertion.
    pub queue_depth: u64,
    /// Busy (in-flight) workers at that node.
    pub inflight: u64,
}

/// A learned provider's verdict for one buffer: the weights to insert it
/// with, plus what the learner chose (for the `policy_decision` trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Per-device weights in `DeviceKind::ALL` order.
    pub weights: [f64; 2],
    /// The device class the learner would assign this buffer to.
    pub arm: DeviceKind,
    /// True when the epsilon floor forced an exploration step.
    pub explore: bool,
}

/// Result of folding one observed service-time span into an online
/// profile (the `profile_updated` trace payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileUpdate {
    /// Stable shape key of the updated `(device, shape)` cell.
    pub key: u64,
    /// Observation count of that cell after the update.
    pub count: u64,
    /// Updated EWMA mean, nanoseconds.
    pub mean_ns: u64,
}

/// Provides per-device weights for data buffers.
pub trait WeightProvider {
    /// Predicted execution time of `buf` on a device of `kind`, seconds.
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64;

    /// Feed one observed service-time span back to the provider: `buf`
    /// finished on `(node, worker)` (a device of `kind`) after `secs`.
    /// Online providers fold the span into their profile and return the
    /// update; static providers (the default) ignore it.
    fn observe(
        &self,
        _buf: &DataBuffer,
        _node: usize,
        _worker: usize,
        _kind: DeviceKind,
        _secs: f64,
    ) -> Option<ProfileUpdate> {
        None
    }

    /// Learned decision for `buf` given engine context: weights plus the
    /// chosen device arm. Providers that only rank statically (the
    /// default) return `None` and the engine falls back to
    /// [`weights_pair`](WeightProvider::weights_pair).
    fn decide(&self, _buf: &DataBuffer, _ctx: &DecisionCtx) -> Option<Decision> {
        None
    }

    /// Scheduling weight of `buf` for `kind`: predicted advantage over the
    /// best alternative device class (higher = more suited).
    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        let own = self.predict_time(buf, kind).max(1e-12);
        let best_other = DeviceKind::ALL
            .iter()
            .filter(|k| **k != kind)
            .map(|&k| self.predict_time(buf, k))
            .fold(f64::INFINITY, f64::min);
        if best_other.is_finite() {
            best_other / own
        } else {
            1.0
        }
    }

    /// Both per-device weights of `buf`, in `DeviceKind::ALL` order.
    /// Produces exactly [`weight`](WeightProvider::weight) for each kind
    /// but calls `predict_time` once per device class instead of once per
    /// (weight, class) pair — the form the runtimes' enqueue hot path
    /// wants.
    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        let tc = self.predict_time(buf, DeviceKind::Cpu);
        let tg = self.predict_time(buf, DeviceKind::Gpu);
        [pair_weight(tc, tg), pair_weight(tg, tc)]
    }
}

/// One side of [`WeightProvider::weights_pair`]: the weight of a buffer
/// whose own predicted time is `own` against its (only) alternative
/// `other` — the two-device-class specialization of the general
/// `best_other / own` rule in [`WeightProvider::weight`].
pub(crate) fn pair_weight(own: f64, other: f64) -> f64 {
    if other.is_finite() {
        other / own.max(1e-12)
    } else {
        1.0
    }
}

impl<W: WeightProvider + ?Sized> WeightProvider for &W {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).predict_time(buf, kind)
    }

    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).weight(buf, kind)
    }

    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        (**self).weights_pair(buf)
    }

    fn observe(
        &self,
        buf: &DataBuffer,
        node: usize,
        worker: usize,
        kind: DeviceKind,
        secs: f64,
    ) -> Option<ProfileUpdate> {
        (**self).observe(buf, node, worker, kind, secs)
    }

    fn decide(&self, buf: &DataBuffer, ctx: &DecisionCtx) -> Option<Decision> {
        (**self).decide(buf, ctx)
    }
}

impl<W: WeightProvider + ?Sized> WeightProvider for Box<W> {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).predict_time(buf, kind)
    }

    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).weight(buf, kind)
    }

    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        (**self).weights_pair(buf)
    }

    fn observe(
        &self,
        buf: &DataBuffer,
        node: usize,
        worker: usize,
        kind: DeviceKind,
        secs: f64,
    ) -> Option<ProfileUpdate> {
        (**self).observe(buf, node, worker, kind, secs)
    }

    fn decide(&self, buf: &DataBuffer, ctx: &DecisionCtx) -> Option<Decision> {
        (**self).decide(buf, ctx)
    }
}

/// Oracle weights computed directly from the buffer's cost shape and the
/// GPU timing parameters — the upper bound a perfect estimator would reach.
#[derive(Debug, Clone)]
pub struct OracleWeights {
    gpu: GpuParams,
    /// Whether GPU predictions assume the asynchronous (overlapped) path.
    pub async_transfers: bool,
}

impl OracleWeights {
    /// Oracle over the given GPU parameters.
    pub fn new(gpu: GpuParams, async_transfers: bool) -> OracleWeights {
        OracleWeights {
            gpu,
            async_transfers,
        }
    }
}

impl WeightProvider for OracleWeights {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        match kind {
            DeviceKind::Cpu => buf.shape.cpu.as_secs_f64(),
            DeviceKind::Gpu => {
                if self.async_transfers {
                    // Steady-state pipelined cost: compute-engine occupancy
                    // (copies overlap), bounded below by the slower copy.
                    let compute = (self.gpu.kernel_launch + buf.shape.gpu_kernel).as_secs_f64();
                    let copy_in = self
                        .gpu
                        .copy_time(buf.shape.bytes_in, CopyMode::Async)
                        .as_secs_f64();
                    let copy_out = self
                        .gpu
                        .copy_time(buf.shape.bytes_out, CopyMode::Async)
                        .as_secs_f64();
                    compute.max(copy_in).max(copy_out)
                } else {
                    self.gpu
                        .sync_task_time(
                            buf.shape.bytes_in,
                            buf.shape.gpu_kernel,
                            buf.shape.bytes_out,
                        )
                        .as_secs_f64()
                }
            }
        }
    }
}

/// Estimator-backed weights: a fitted kNN model per the paper's Section 4,
/// queried on the buffer's input parameters, with a bounded O(1) memo
/// cache since replicated dataflows see many tasks with identical
/// parameters.
///
/// With [`EstimatorWeights::with_online`] the provider additionally keeps
/// an [`OnlineProfile`] fed by [`observe`](WeightProvider::observe)d
/// service-time spans; once a `(device, shape)` cell has at least
/// `min_obs` observations its EWMA mean replaces the static kNN
/// prediction. Every online update *invalidates the memo entry* for that
/// shape — a stale cached pair must never outlive a `profile_updated`.
pub struct EstimatorWeights {
    est: KnnEstimator,
    cache: parking_lot::Mutex<std::collections::HashMap<Vec<u8>, [f64; 2]>>,
    online: Option<parking_lot::Mutex<OnlineProfile>>,
    min_obs: u64,
}

/// Cap on memoized parameter keys (a replicated dataflow reuses a handful
/// of distinct shapes; the cap only guards pathological workloads).
const CACHE_CAP: usize = 4096;

/// Online observations of a cell before its EWMA mean overrides the
/// static kNN prediction.
pub const ONLINE_MIN_OBS: u64 = 3;

impl EstimatorWeights {
    /// Wrap a fitted estimator (static: observed spans are ignored).
    pub fn new(est: KnnEstimator) -> EstimatorWeights {
        EstimatorWeights {
            est,
            cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
            online: None,
            min_obs: ONLINE_MIN_OBS,
        }
    }

    /// Wrap a fitted estimator with an online correction profile: spans
    /// fed through [`observe`](WeightProvider::observe) override the
    /// static prediction per `(device, shape)` once `min_obs` spans of
    /// that cell have been seen.
    pub fn with_online(
        est: KnnEstimator,
        profile: OnlineProfile,
        min_obs: u64,
    ) -> EstimatorWeights {
        EstimatorWeights {
            est,
            cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
            online: Some(parking_lot::Mutex::new(profile)),
            min_obs: min_obs.max(1),
        }
    }

    fn class_of(kind: DeviceKind) -> DeviceClass {
        match kind {
            DeviceKind::Cpu => DeviceClass::CPU,
            DeviceKind::Gpu => DeviceClass::GPU,
        }
    }

    fn key(buf: &DataBuffer) -> Vec<u8> {
        // Cheap structural key over the parameters.
        format!("{:?}", buf.params).into_bytes()
    }

    /// Stable shape key of a buffer — the cell key the online profile and
    /// the `profile_updated` trace use.
    pub fn shape_key(buf: &DataBuffer) -> u64 {
        fnv1a64(&Self::key(buf))
    }

    fn predicted_times(&self, buf: &DataBuffer, key: &[u8]) -> [f64; 2] {
        let mut cpu = self
            .est
            .predict_time(DeviceClass::CPU, &buf.params)
            .unwrap_or(f64::INFINITY);
        let mut gpu = self
            .est
            .predict_time(DeviceClass::GPU, &buf.params)
            .unwrap_or(f64::INFINITY);
        if let Some(online) = &self.online {
            let shape = fnv1a64(key);
            let online = online.lock();
            for (class, t) in [(DeviceClass::CPU, &mut cpu), (DeviceClass::GPU, &mut gpu)] {
                if online.count(class, shape) >= self.min_obs {
                    if let Some(mean) = online.mean(class, shape) {
                        *t = mean;
                    }
                }
            }
        }
        [cpu, gpu]
    }
}

impl WeightProvider for EstimatorWeights {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        let key = Self::key(buf);
        let slot = match kind {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
        };
        {
            let cache = self.cache.lock();
            if let Some(times) = cache.get(&key) {
                return times[slot];
            }
        }
        let times = self.predicted_times(buf, &key);
        let mut cache = self.cache.lock();
        if cache.len() < CACHE_CAP {
            cache.insert(key, times);
        }
        times[slot]
    }

    fn observe(
        &self,
        buf: &DataBuffer,
        _node: usize,
        _worker: usize,
        kind: DeviceKind,
        secs: f64,
    ) -> Option<ProfileUpdate> {
        let online = self.online.as_ref()?;
        let key = Self::key(buf);
        let shape = fnv1a64(&key);
        let class = Self::class_of(kind);
        let (count, mean) = {
            let mut online = online.lock();
            let count = online.observe(class, shape, secs);
            (count, online.mean(class, shape).unwrap_or(secs))
        };
        // The invalidation fix: the memoized pair for this shape is now
        // stale — drop it so the next prediction recomputes.
        self.cache.lock().remove(&key);
        Some(ProfileUpdate {
            key: shape,
            count,
            mean_ns: (mean * 1e9).round() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use anthill_estimator::{ProfileStore, TaskParams};
    use anthill_hetsim::NbiaCostModel;

    fn tile_buffer(side: u32) -> DataBuffer {
        let m = NbiaCostModel::paper_calibrated();
        DataBuffer {
            id: BufferId(0),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: m.tile(side),
            level: if side > 32 { 1 } else { 0 },
            task: 0,
        }
    }

    #[test]
    fn oracle_gpu_prefers_large_tiles() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(w.weight(&large, DeviceKind::Gpu) > 10.0 * w.weight(&small, DeviceKind::Gpu));
    }

    #[test]
    fn oracle_cpu_prefers_small_tiles() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(w.weight(&small, DeviceKind::Cpu) > w.weight(&large, DeviceKind::Cpu));
    }

    #[test]
    fn weights_are_reciprocal_for_two_devices() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let b = tile_buffer(128);
        let wg = w.weight(&b, DeviceKind::Gpu);
        let wc = w.weight(&b, DeviceKind::Cpu);
        assert!((wg * wc - 1.0).abs() < 1e-9, "wg={wg} wc={wc}");
    }

    #[test]
    fn weights_pair_is_bit_identical_to_per_kind_weights() {
        for asyn in [false, true] {
            let w = OracleWeights::new(GpuParams::geforce_8800gt(), asyn);
            for side in [4u32, 32, 128, 512, 2048] {
                let b = tile_buffer(side);
                let pair = w.weights_pair(&b);
                assert_eq!(pair[0].to_bits(), w.weight(&b, DeviceKind::Cpu).to_bits());
                assert_eq!(pair[1].to_bits(), w.weight(&b, DeviceKind::Gpu).to_bits());
            }
        }
    }

    #[test]
    fn pair_weight_handles_nonfinite_predictions() {
        // An infinite alternative falls back to the neutral weight 1.0; a
        // NaN own time is clamped — exactly the general rule's behaviour.
        assert_eq!(pair_weight(2.0, f64::INFINITY), 1.0);
        assert_eq!(pair_weight(f64::NAN, 3.0), 3.0 / 1e-12);
        assert_eq!(pair_weight(0.0, 4.0), 4.0 / 1e-12);
    }

    #[test]
    fn async_oracle_hides_transfer_costs() {
        let sync = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let asyn = OracleWeights::new(GpuParams::geforce_8800gt(), true);
        let b = tile_buffer(512);
        assert!(asyn.predict_time(&b, DeviceKind::Gpu) < sync.predict_time(&b, DeviceKind::Gpu));
    }

    #[test]
    fn estimator_weights_track_the_profile() {
        // Train on oracle-derived times for a few tile sizes.
        let oracle = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let mut profile = ProfileStore::new("nbia");
        for side in [32u32, 64, 128, 256, 512] {
            let b = tile_buffer(side);
            profile.add_cpu_gpu(
                b.params.clone(),
                oracle.predict_time(&b, DeviceKind::Cpu),
                oracle.predict_time(&b, DeviceKind::Gpu),
            );
        }
        let est = EstimatorWeights::new(KnnEstimator::fit(profile, 1));
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(est.weight(&large, DeviceKind::Gpu) > 20.0);
        assert!(est.weight(&small, DeviceKind::Gpu) < 2.0);
        // Cache path returns identical values.
        let w1 = est.weight(&large, DeviceKind::Gpu);
        let w2 = est.weight(&large, DeviceKind::Gpu);
        assert_eq!(w1, w2);
    }

    fn trained_estimator() -> KnnEstimator {
        let oracle = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let mut profile = ProfileStore::new("nbia");
        for side in [32u32, 64, 128, 256, 512] {
            let b = tile_buffer(side);
            profile.add_cpu_gpu(
                b.params.clone(),
                oracle.predict_time(&b, DeviceKind::Cpu),
                oracle.predict_time(&b, DeviceKind::Gpu),
            );
        }
        KnnEstimator::fit(profile, 1)
    }

    /// Regression: an online profile update must bust the memo cache —
    /// a stale cached weight is never served after `profile_updated`.
    #[test]
    fn online_update_busts_the_memo_cache() {
        let est = EstimatorWeights::with_online(trained_estimator(), OnlineProfile::default(), 3);
        let b = tile_buffer(128);
        // Prime the memo cache with the static kNN prediction.
        let stale_cpu = est.predict_time(&b, DeviceKind::Cpu);
        assert_eq!(est.predict_time(&b, DeviceKind::Cpu), stale_cpu);
        // Observe spans wildly different from the static profile.
        let observed = stale_cpu * 10.0;
        for i in 0..3 {
            let up = est
                .observe(&b, 0, 0, DeviceKind::Cpu, observed)
                .expect("online estimator folds spans");
            assert_eq!(up.count, i + 1);
            assert_eq!(up.key, EstimatorWeights::shape_key(&b));
        }
        // The cached pair must not be served: the prediction now follows
        // the online EWMA (seeded at `observed`, so exactly `observed`).
        let fresh = est.predict_time(&b, DeviceKind::Cpu);
        assert!(
            (fresh - observed).abs() < 1e-12,
            "stale cache served: fresh={fresh} stale={stale_cpu} observed={observed}"
        );
        // The untouched GPU side still follows the static profile.
        let gpu_static = EstimatorWeights::new(trained_estimator());
        assert_eq!(
            est.predict_time(&b, DeviceKind::Gpu),
            gpu_static.predict_time(&b, DeviceKind::Gpu)
        );
    }

    /// A static (PR-2 shaped) estimator ignores observed spans entirely.
    #[test]
    fn static_estimator_ignores_observed_spans() {
        let est = EstimatorWeights::new(trained_estimator());
        let b = tile_buffer(128);
        let before = est.predict_time(&b, DeviceKind::Cpu);
        assert!(est
            .observe(&b, 0, 0, DeviceKind::Cpu, before * 10.0)
            .is_none());
        assert_eq!(est.predict_time(&b, DeviceKind::Cpu), before);
    }
}
