//! Per-device buffer weights: the glue between the performance estimator
//! and the schedulers.
//!
//! DDWRR and ODDS order ready buffers by a per-device weight that reflects
//! how *suited* the buffer is to that device. We use the buffer's predicted
//! advantage on the device over its best alternative device (for the
//! paper's two device classes this is exactly the pairwise relative
//! speedup: the GPU queue is sorted by GPU-over-CPU speedup and the CPU
//! queue by its reciprocal). Only the resulting *ordering* matters, so
//! estimator error tolerance is high (paper Sections 4–5.2).

use crate::buffer::DataBuffer;
use anthill_estimator::{DeviceClass, KnnEstimator};
use anthill_hetsim::{CopyMode, DeviceKind, GpuParams};

/// Provides per-device weights for data buffers.
pub trait WeightProvider {
    /// Predicted execution time of `buf` on a device of `kind`, seconds.
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64;

    /// Scheduling weight of `buf` for `kind`: predicted advantage over the
    /// best alternative device class (higher = more suited).
    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        let own = self.predict_time(buf, kind).max(1e-12);
        let best_other = DeviceKind::ALL
            .iter()
            .filter(|k| **k != kind)
            .map(|&k| self.predict_time(buf, k))
            .fold(f64::INFINITY, f64::min);
        if best_other.is_finite() {
            best_other / own
        } else {
            1.0
        }
    }

    /// Both per-device weights of `buf`, in `DeviceKind::ALL` order.
    /// Produces exactly [`weight`](WeightProvider::weight) for each kind
    /// but calls `predict_time` once per device class instead of once per
    /// (weight, class) pair — the form the runtimes' enqueue hot path
    /// wants.
    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        let tc = self.predict_time(buf, DeviceKind::Cpu);
        let tg = self.predict_time(buf, DeviceKind::Gpu);
        [pair_weight(tc, tg), pair_weight(tg, tc)]
    }
}

/// One side of [`WeightProvider::weights_pair`]: the weight of a buffer
/// whose own predicted time is `own` against its (only) alternative
/// `other` — the two-device-class specialization of the general
/// `best_other / own` rule in [`WeightProvider::weight`].
fn pair_weight(own: f64, other: f64) -> f64 {
    if other.is_finite() {
        other / own.max(1e-12)
    } else {
        1.0
    }
}

impl<W: WeightProvider + ?Sized> WeightProvider for &W {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).predict_time(buf, kind)
    }

    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).weight(buf, kind)
    }

    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        (**self).weights_pair(buf)
    }
}

impl<W: WeightProvider + ?Sized> WeightProvider for Box<W> {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).predict_time(buf, kind)
    }

    fn weight(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        (**self).weight(buf, kind)
    }

    fn weights_pair(&self, buf: &DataBuffer) -> [f64; 2] {
        (**self).weights_pair(buf)
    }
}

/// Oracle weights computed directly from the buffer's cost shape and the
/// GPU timing parameters — the upper bound a perfect estimator would reach.
#[derive(Debug, Clone)]
pub struct OracleWeights {
    gpu: GpuParams,
    /// Whether GPU predictions assume the asynchronous (overlapped) path.
    pub async_transfers: bool,
}

impl OracleWeights {
    /// Oracle over the given GPU parameters.
    pub fn new(gpu: GpuParams, async_transfers: bool) -> OracleWeights {
        OracleWeights {
            gpu,
            async_transfers,
        }
    }
}

impl WeightProvider for OracleWeights {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        match kind {
            DeviceKind::Cpu => buf.shape.cpu.as_secs_f64(),
            DeviceKind::Gpu => {
                if self.async_transfers {
                    // Steady-state pipelined cost: compute-engine occupancy
                    // (copies overlap), bounded below by the slower copy.
                    let compute = (self.gpu.kernel_launch + buf.shape.gpu_kernel).as_secs_f64();
                    let copy_in = self
                        .gpu
                        .copy_time(buf.shape.bytes_in, CopyMode::Async)
                        .as_secs_f64();
                    let copy_out = self
                        .gpu
                        .copy_time(buf.shape.bytes_out, CopyMode::Async)
                        .as_secs_f64();
                    compute.max(copy_in).max(copy_out)
                } else {
                    self.gpu
                        .sync_task_time(
                            buf.shape.bytes_in,
                            buf.shape.gpu_kernel,
                            buf.shape.bytes_out,
                        )
                        .as_secs_f64()
                }
            }
        }
    }
}

/// Estimator-backed weights: a fitted kNN model per the paper's Section 4,
/// queried on the buffer's input parameters, with a bounded O(1) memo
/// cache since replicated dataflows see many tasks with identical
/// parameters.
pub struct EstimatorWeights {
    est: KnnEstimator,
    cache: parking_lot::Mutex<std::collections::HashMap<Vec<u8>, [f64; 2]>>,
}

/// Cap on memoized parameter keys (a replicated dataflow reuses a handful
/// of distinct shapes; the cap only guards pathological workloads).
const CACHE_CAP: usize = 4096;

impl EstimatorWeights {
    /// Wrap a fitted estimator.
    pub fn new(est: KnnEstimator) -> EstimatorWeights {
        EstimatorWeights {
            est,
            cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn class_of(kind: DeviceKind) -> DeviceClass {
        match kind {
            DeviceKind::Cpu => DeviceClass::CPU,
            DeviceKind::Gpu => DeviceClass::GPU,
        }
    }

    fn key(buf: &DataBuffer) -> Vec<u8> {
        // Cheap structural key over the parameters.
        format!("{:?}", buf.params).into_bytes()
    }
}

impl WeightProvider for EstimatorWeights {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        let key = Self::key(buf);
        let slot = match kind {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
        };
        {
            let cache = self.cache.lock();
            if let Some(times) = cache.get(&key) {
                return times[slot];
            }
        }
        let cpu = self
            .est
            .predict_time(DeviceClass::CPU, &buf.params)
            .unwrap_or(f64::INFINITY);
        let gpu = self
            .est
            .predict_time(Self::class_of(DeviceKind::Gpu), &buf.params)
            .unwrap_or(f64::INFINITY);
        let times = [cpu, gpu];
        let mut cache = self.cache.lock();
        if cache.len() < CACHE_CAP {
            cache.insert(key, times);
        }
        times[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use anthill_estimator::{ProfileStore, TaskParams};
    use anthill_hetsim::NbiaCostModel;

    fn tile_buffer(side: u32) -> DataBuffer {
        let m = NbiaCostModel::paper_calibrated();
        DataBuffer {
            id: BufferId(0),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: m.tile(side),
            level: if side > 32 { 1 } else { 0 },
            task: 0,
        }
    }

    #[test]
    fn oracle_gpu_prefers_large_tiles() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(w.weight(&large, DeviceKind::Gpu) > 10.0 * w.weight(&small, DeviceKind::Gpu));
    }

    #[test]
    fn oracle_cpu_prefers_small_tiles() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(w.weight(&small, DeviceKind::Cpu) > w.weight(&large, DeviceKind::Cpu));
    }

    #[test]
    fn weights_are_reciprocal_for_two_devices() {
        let w = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let b = tile_buffer(128);
        let wg = w.weight(&b, DeviceKind::Gpu);
        let wc = w.weight(&b, DeviceKind::Cpu);
        assert!((wg * wc - 1.0).abs() < 1e-9, "wg={wg} wc={wc}");
    }

    #[test]
    fn weights_pair_is_bit_identical_to_per_kind_weights() {
        for asyn in [false, true] {
            let w = OracleWeights::new(GpuParams::geforce_8800gt(), asyn);
            for side in [4u32, 32, 128, 512, 2048] {
                let b = tile_buffer(side);
                let pair = w.weights_pair(&b);
                assert_eq!(pair[0].to_bits(), w.weight(&b, DeviceKind::Cpu).to_bits());
                assert_eq!(pair[1].to_bits(), w.weight(&b, DeviceKind::Gpu).to_bits());
            }
        }
    }

    #[test]
    fn pair_weight_handles_nonfinite_predictions() {
        // An infinite alternative falls back to the neutral weight 1.0; a
        // NaN own time is clamped — exactly the general rule's behaviour.
        assert_eq!(pair_weight(2.0, f64::INFINITY), 1.0);
        assert_eq!(pair_weight(f64::NAN, 3.0), 3.0 / 1e-12);
        assert_eq!(pair_weight(0.0, 4.0), 4.0 / 1e-12);
    }

    #[test]
    fn async_oracle_hides_transfer_costs() {
        let sync = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let asyn = OracleWeights::new(GpuParams::geforce_8800gt(), true);
        let b = tile_buffer(512);
        assert!(asyn.predict_time(&b, DeviceKind::Gpu) < sync.predict_time(&b, DeviceKind::Gpu));
    }

    #[test]
    fn estimator_weights_track_the_profile() {
        // Train on oracle-derived times for a few tile sizes.
        let oracle = OracleWeights::new(GpuParams::geforce_8800gt(), false);
        let mut profile = ProfileStore::new("nbia");
        for side in [32u32, 64, 128, 256, 512] {
            let b = tile_buffer(side);
            profile.add_cpu_gpu(
                b.params.clone(),
                oracle.predict_time(&b, DeviceKind::Cpu),
                oracle.predict_time(&b, DeviceKind::Gpu),
            );
        }
        let est = EstimatorWeights::new(KnnEstimator::fit(profile, 1));
        let small = tile_buffer(32);
        let large = tile_buffer(512);
        assert!(est.weight(&large, DeviceKind::Gpu) > 20.0);
        assert!(est.weight(&small, DeviceKind::Gpu) < 2.0);
        // Cache path returns identical values.
        let w1 = est.weight(&large, DeviceKind::Gpu);
        let w2 = est.weight(&large, DeviceKind::Gpu);
        assert_eq!(w1, w2);
    }
}
