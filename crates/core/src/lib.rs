//! # anthill — replicated-dataflow runtime with heterogeneous scheduling
//!
//! The core crate of the reproduction: the paper's primary contribution,
//! a filter-stream runtime whose demand-driven schedulers coordinate CPUs
//! and GPUs using run-time relative-performance estimates.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | §3 filters, streams, event queues | [`buffer`], [`queue`], [`local`], [`sim`] |
//! | §3 DDFCFS / §5.2 DDWRR / §5.3 ODDS (Table 5) | [`policy`] |
//! | §4 relative-performance weights | [`weights`] (backed by `anthill-estimator`) |
//! | §5.1 Algorithm 1 (adaptive async transfers) | [`transfer`] |
//! | §5.3.1 DQAA (dynamic request windows) | [`dqaa`] |
//! | §5.3.2 DBSA (sender-side selection) | [`dbsa`] |
//! | §5.2–5.3 as one backend-agnostic scheduling core | [`engine`] |
//! | §2 filter DAGs with labeled streams | [`graph`] |
//! | beyond the paper: elastic worker membership | [`membership`] |
//!
//! ## One engine, many drivers
//!
//! All scheduling decisions live in [`engine`]: a backend-agnostic core
//! that owns the demand-driven protocol end to end — ready-queue ordering
//! (DDFCFS/DDWRR over [`queue::SharedQueue`] + [`weights`]), sender-side
//! selection (DBSA), request-window adaptation (DQAA), dispatch, and obs
//! event emission — parameterized over small `Clock`, `Transport` and
//! `Executor` traits. The executors are thin drivers of that engine:
//!
//! * [`sim`] — the engine over the virtual-time hardware models of
//!   `anthill-hetsim`: deterministic, fast, and the vehicle for every
//!   cluster experiment in the paper's Section 6.
//! * [`local`] — real OS threads on the current machine: worker threads
//!   per device slot pull from engine-ordered stage queues, handlers run
//!   actual computation, accelerator speed differences can be emulated by
//!   calibrated busy-waits. Demonstrates the programming model end to end.
//! * [`engine::sequential`] — a single-threaded reference driver; the
//!   policy-parity tests pin the other backends against it, and it is the
//!   template for adding new backends.
//! * [`net`] — a TCP multi-process backend: the engine runs in a
//!   coordinator process, workers are separate processes speaking a
//!   length-prefixed frame protocol. Its lockstep mode reproduces the
//!   sequential driver's callback order over real sockets (same counts,
//!   proven by the parity suite); its concurrent mode executes in wall
//!   time with the full recovery path (process kill, connection sever,
//!   heartbeat silence all map onto `worker_died`).
//!
//! ## Quick taste
//!
//! ```
//! use anthill::policy::Policy;
//! use anthill::sim::{run_nbia, SimConfig, WorkloadSpec};
//! use anthill_hetsim::ClusterSpec;
//!
//! // One CPU+GPU node plus one CPU-only node, 8% of tiles recalculated.
//! let workload = WorkloadSpec { tiles: 2_000, ..WorkloadSpec::paper_base(0.08) };
//! let cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), Policy::odds());
//! let report = run_nbia(&cfg, &workload);
//! assert_eq!(report.total_tasks, workload.total_buffers());
//! assert!(report.speedup() > 10.0);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod dbsa;
pub mod dqaa;
pub mod engine;
pub mod faults;
pub mod graph;
pub mod local;
pub mod membership;
pub mod net;
pub mod obs;
pub mod policy;
pub mod queue;
pub mod sim;
pub mod transfer;
pub mod weights;

pub use buffer::{BufferId, DataBuffer};
pub use policy::{Policy, PolicyKind};
