//! The NBIA-shaped workload driving the cluster experiments: a set of
//! image tiles processed at a low resolution first, a deterministic subset
//! of which fails the classification hypothesis test and is recalculated
//! at the high resolution (paper Sections 2 and 6).

use anthill_estimator::TaskParams;
use anthill_hetsim::{NbiaCostModel, TaskShape};
use anthill_simkit::SimDuration;

use crate::buffer::{BufferId, DataBuffer};

/// Workload parameters for one experiment run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of image tiles.
    pub tiles: u64,
    /// Side of the lowest-resolution tiles (pixels).
    pub low_side: u32,
    /// Side of the recalculation-resolution tiles (pixels).
    pub high_side: u32,
    /// Fraction of tiles recalculated at the high resolution.
    pub recalc_rate: f64,
    /// The calibrated cost model.
    pub cost: NbiaCostModel,
    /// Explicit `(low, high)` task shapes overriding the cost model —
    /// `None` (the default) derives shapes from `cost` and the tile sides.
    /// Lets tests construct synthetic workloads (e.g. device-neutral
    /// shapes for cross-backend parity checks).
    pub shapes: Option<(TaskShape, TaskShape)>,
}

impl WorkloadSpec {
    /// The paper's base workload: 26,742 tiles with (32², 512²) levels
    /// (Sections 6.3–6.4 base cases).
    pub fn paper_base(recalc_rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            tiles: 26_742,
            low_side: 32,
            high_side: 512,
            recalc_rate,
            cost: NbiaCostModel::paper_calibrated(),
            shapes: None,
        }
    }

    /// The shape of a low-resolution tile (override or cost model).
    pub fn low_shape(&self) -> TaskShape {
        self.shapes
            .map(|(low, _)| low)
            .unwrap_or_else(|| self.cost.tile(self.low_side))
    }

    /// The shape of a high-resolution tile (override or cost model).
    pub fn high_shape(&self) -> TaskShape {
        self.shapes
            .map(|(_, high)| high)
            .unwrap_or_else(|| self.cost.tile(self.high_side))
    }

    /// The paper's scaling workload: 267,420 tiles (Section 6.4.3).
    pub fn paper_scaling(recalc_rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            tiles: 267_420,
            ..WorkloadSpec::paper_base(recalc_rate)
        }
    }

    /// Is tile `i` recalculated at the high resolution? Deterministic
    /// fractional-accumulation spread: exactly `floor(tiles × rate)` tiles,
    /// evenly interleaved.
    pub fn is_recalc(&self, tile: u64) -> bool {
        let r = self.recalc_rate.clamp(0.0, 1.0);
        (((tile + 1) as f64 * r).floor() - (tile as f64 * r).floor()) >= 1.0
    }

    /// Number of recalculated tiles.
    pub fn recalc_count(&self) -> u64 {
        (self.tiles as f64 * self.recalc_rate.clamp(0.0, 1.0)).floor() as u64
    }

    /// The low-resolution buffer of tile `i`. Buffer ids: low-res tiles use
    /// `i`, high-res recalculations use `tiles + i`.
    pub fn low_buffer(&self, tile: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(tile),
            params: TaskParams::nums(&[f64::from(self.low_side)]),
            shape: self.low_shape(),
            level: 0,
            task: tile,
        }
    }

    /// The high-resolution (recalculation) buffer of tile `i`.
    pub fn high_buffer(&self, tile: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(self.tiles + tile),
            params: TaskParams::nums(&[f64::from(self.high_side)]),
            shape: self.high_shape(),
            level: 1,
            task: tile,
        }
    }

    /// Total single-CPU-core execution time of the whole workload (the
    /// speedup baseline; reproduces Table 3 analytically).
    pub fn cpu_baseline(&self) -> SimDuration {
        self.low_shape().cpu * self.tiles + self.high_shape().cpu * self.recalc_count()
    }

    /// Total number of processed buffers (low + recalculated).
    pub fn total_buffers(&self) -> u64 {
        self.tiles + self.recalc_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recalc_count_is_exact_and_spread() {
        let w = WorkloadSpec::paper_base(0.16);
        let marked = (0..w.tiles).filter(|&t| w.is_recalc(t)).count() as u64;
        assert_eq!(marked, w.recalc_count());
        assert_eq!(marked, (26_742f64 * 0.16).floor() as u64);
        // Evenly interleaved: any window of 100 tiles holds 15..17 marks.
        for start in (0..26_000).step_by(1000) {
            let in_window = (start..start + 100).filter(|&t| w.is_recalc(t)).count();
            assert!(
                (15..=17).contains(&in_window),
                "window {start}: {in_window}"
            );
        }
    }

    #[test]
    fn zero_and_full_rates() {
        let none = WorkloadSpec::paper_base(0.0);
        assert_eq!(none.recalc_count(), 0);
        assert!(!(0..100).any(|t| none.is_recalc(t)));
        let all = WorkloadSpec::paper_base(1.0);
        assert_eq!(all.recalc_count(), all.tiles);
        assert!((0..100).all(|t| all.is_recalc(t)));
    }

    #[test]
    fn cpu_baseline_matches_table3() {
        // Table 3: 0% -> 30 s, 16% -> 1287 s, 20% -> 1532 s (±10%).
        let t = |r: f64| WorkloadSpec::paper_base(r).cpu_baseline().as_secs_f64();
        assert!((28.0..32.0).contains(&t(0.0)), "0%: {}", t(0.0));
        let t16 = t(0.16);
        assert!((1150.0..1420.0).contains(&t16), "16%: {t16}");
        let t20 = t(0.20);
        assert!((1380.0..1690.0).contains(&t20), "20%: {t20}");
    }

    #[test]
    fn buffer_ids_are_disjoint_across_levels() {
        let w = WorkloadSpec::paper_base(0.5);
        let low = w.low_buffer(5);
        let high = w.high_buffer(5);
        assert_ne!(low.id, high.id);
        assert_eq!(low.task, high.task);
        assert_eq!(low.level, 0);
        assert_eq!(high.level, 1);
    }

    #[test]
    fn total_buffers_counts_both_levels() {
        let w = WorkloadSpec::paper_base(0.08);
        assert_eq!(w.total_buffers(), w.tiles + w.recalc_count());
    }
}
