//! The virtual-time cluster executor: runs the replicated-dataflow runtime
//! (readers, workers, demand-driven streams, all three policies) over the
//! calibrated hardware models, reproducing the paper's cluster experiments
//! deterministically.

mod graph;
mod report;
mod runtime;
mod workload;

pub use graph::{run_graph_sim, GraphSimConfig, GraphSimReport};
pub use report::SimReport;
pub use runtime::{run_nbia, SimConfig};
pub use workload::WorkloadSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use anthill_hetsim::{ClusterSpec, DeviceKind, NodeSpec};

    fn small_workload(recalc: f64) -> WorkloadSpec {
        WorkloadSpec {
            tiles: 800,
            ..WorkloadSpec::paper_base(recalc)
        }
    }

    fn cfg(cluster: ClusterSpec, policy: Policy) -> SimConfig {
        SimConfig::new(cluster, policy)
    }

    #[test]
    fn cpu_only_run_matches_analytic_baseline() {
        let cluster = ClusterSpec::new(vec![NodeSpec {
            cpu_cores: 1,
            gpus: 0,
        }]);
        let w = small_workload(0.08);
        let r = run_nbia(&cfg(cluster, Policy::ddfcfs(4)), &w);
        let ratio = r.makespan.as_secs_f64() / w.cpu_baseline().as_secs_f64();
        assert!(
            (0.98..1.10).contains(&ratio),
            "CPU-only makespan should track the baseline: ratio {ratio}"
        );
        assert_eq!(r.total_tasks, w.total_buffers());
    }

    #[test]
    fn every_tile_processed_exactly_once_under_every_policy() {
        let w = small_workload(0.10);
        for policy in [Policy::ddfcfs(8), Policy::ddwrr(8), Policy::odds()] {
            let r = run_nbia(&cfg(ClusterSpec::homogeneous(2), policy), &w);
            assert_eq!(r.total_tasks, w.total_buffers(), "{policy:?}");
            let low: u64 = DeviceKind::ALL.iter().map(|&k| r.tasks(k, 0)).sum();
            let high: u64 = DeviceKind::ALL.iter().map(|&k| r.tasks(k, 1)).sum();
            assert_eq!(low, w.tiles);
            assert_eq!(high, w.recalc_count());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = small_workload(0.12);
        let c = cfg(ClusterSpec::heterogeneous(1, 1), Policy::odds());
        let a = run_nbia(&c, &w);
        let b = run_nbia(&c, &w);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tasks_by, b.tasks_by);
    }

    #[test]
    fn ddwrr_routes_high_res_to_gpu() {
        // Table 4's mechanism: under DDWRR the GPU gets the high-res tiles.
        let w = small_workload(0.16);
        let r = run_nbia(&cfg(ClusterSpec::homogeneous(1), Policy::ddwrr(32)), &w);
        assert!(
            r.share_pct(DeviceKind::Gpu, 1) > 80.0,
            "GPU high-res share {:.1}%",
            r.share_pct(DeviceKind::Gpu, 1)
        );
        assert!(
            r.share_pct(DeviceKind::Cpu, 0) > 30.0,
            "CPU low-res share {:.1}%",
            r.share_pct(DeviceKind::Cpu, 0)
        );
    }

    #[test]
    fn ddwrr_beats_gpu_only_with_recalc() {
        // Fig. 8's headline: adding the CPU under DDWRR roughly doubles the
        // GPU-only speedup at moderate recalculation rates... at small scale
        // we only assert a solid improvement.
        let w = small_workload(0.16);
        let mut gpu_only = cfg(ClusterSpec::homogeneous(1), Policy::ddfcfs(8));
        gpu_only.gpu_only = true;
        let a = run_nbia(&gpu_only, &w);
        let b = run_nbia(&cfg(ClusterSpec::homogeneous(1), Policy::ddwrr(32)), &w);
        assert!(
            b.speedup() > 1.3 * a.speedup(),
            "DDWRR {:.1} !>> GPU-only {:.1}",
            b.speedup(),
            a.speedup()
        );
    }

    #[test]
    fn odds_adapts_request_windows() {
        let w = small_workload(0.10);
        let r = run_nbia(&cfg(ClusterSpec::heterogeneous(1, 1), Policy::odds()), &w);
        // At least one worker thread must have moved its window off 1.
        let adapted = r
            .request_traces
            .iter()
            .any(|(_, trace)| trace.iter().any(|&(_, t)| t > 1));
        assert!(adapted, "DQAA never adapted any window");
    }

    #[test]
    fn heterogeneous_node_contributes_under_odds() {
        let w = small_workload(0.08);
        let r = run_nbia(&cfg(ClusterSpec::heterogeneous(1, 1), Policy::odds()), &w);
        // The CPU-only node's two cores must process a meaningful share of
        // the low-resolution tiles.
        assert!(
            r.share_pct(DeviceKind::Cpu, 0) > 25.0,
            "CPU low-res share {:.1}%",
            r.share_pct(DeviceKind::Cpu, 0)
        );
    }

    #[test]
    fn multi_gpu_nodes_scale_within_the_node() {
        // NodeSpec generalizes beyond the paper's testbed: two GPUs on one
        // node nearly halve the makespan of a GPU-bound workload (50%
        // recalculation keeps the high-res stream the bottleneck).
        let w = small_workload(0.50);
        let one = run_nbia(
            &cfg(
                ClusterSpec::new(vec![NodeSpec {
                    cpu_cores: 1,
                    gpus: 1,
                }]),
                Policy::odds(),
            ),
            &w,
        );
        let two = run_nbia(
            &cfg(
                ClusterSpec::new(vec![NodeSpec {
                    cpu_cores: 1,
                    gpus: 2,
                }]),
                Policy::odds(),
            ),
            &w,
        );
        assert!(
            two.speedup() > 1.4 * one.speedup(),
            "2 GPUs {:.1} vs 1 GPU {:.1}",
            two.speedup(),
            one.speedup()
        );
        assert_eq!(two.total_tasks, w.total_buffers());
    }

    #[test]
    fn utilization_is_sane() {
        let w = small_workload(0.08);
        let mut c = cfg(ClusterSpec::homogeneous(1), Policy::ddwrr(16));
        c.trace_buckets = 20;
        let r = run_nbia(&c, &w);
        for &(_, u) in &r.utilization {
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        assert!(!r.util_traces.is_empty());
        assert!(r.mean_utilization(DeviceKind::Gpu) > 0.3);
    }
}
