//! The simulated cluster executor: the Anthill runtime's demand-driven
//! streams, event scheduler and device workers, driven in virtual time over
//! the hardware models of `anthill-hetsim`.
//!
//! Topology (matching the paper's NBIA deployment, Section 6): every node
//! hosts one *reader* instance (the tiles are declustered round-robin over
//! the nodes' local disks) and one *worker* instance (the fused NBIA
//! filter) with one worker thread per CPU core and one manager thread per
//! GPU. The reader→worker stream is the n×m demand-driven channel the
//! three policies configure:
//!
//! * request windows are static (DDFCFS/DDWRR) or DQAA-adapted (ODDS);
//! * the reader answers requests FIFO (DDFCFS/DDWRR) or via DBSA (ODDS);
//! * workers consume their shared queue FIFO (DDFCFS) or best-fit
//!   per device (DDWRR/ODDS).
//!
//! Recalculated tiles loop back to the owning reader through a small
//! control message, reproducing the Classifier→Start→Reader cycle of
//! Figure 1.

use std::collections::HashMap;

use anthill_estimator::ProfileStore;
use anthill_hetsim::{
    ClusterSpec, DeviceId, DeviceKind, GpuEngines, GpuParams, NetParams, Network,
};
use anthill_simkit::{
    DurationHistogram, Engine, Scheduler, SimDuration, SimRng, SimTime, UtilizationTracker, World,
};

use crate::buffer::DataBuffer;
use crate::dqaa::Dqaa;
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::Policy;
use crate::queue::SharedQueue;
use crate::sim::report::SimReport;
use crate::sim::workload::WorkloadSpec;
use crate::transfer::{pipeline, AdaptiveStreams};
use crate::weights::{EstimatorWeights, OracleWeights, WeightProvider};

/// Bytes of a data-request control message.
const REQUEST_BYTES: u64 = 64;
/// Bytes of a recalculation notification message.
const RECALC_BYTES: u64 = 128;

/// Configuration of one simulated run.
#[derive(Clone)]
pub struct SimConfig {
    /// The cluster topology.
    pub cluster: ClusterSpec,
    /// The stream scheduling policy.
    pub policy: Policy,
    /// Use the asynchronous transfer pipeline (Algorithm 1) on GPUs.
    pub async_transfers: bool,
    /// Disable CPU worker threads (GPU-only configurations).
    pub gpu_only: bool,
    /// Weight buffers with the kNN estimator (vs the oracle cost model).
    pub use_estimator: bool,
    /// Root RNG seed (estimator profile noise).
    pub seed: u64,
    /// GPU timing parameters.
    pub gpu: GpuParams,
    /// Network timing parameters.
    pub net: NetParams,
    /// Upper bound on any worker's request window.
    pub max_request_window: usize,
    /// Buckets for utilization traces (0 disables trace collection).
    pub trace_buckets: usize,
    /// Per-node CPU speed factors (1.0 = the calibrated core; 0.5 = half
    /// speed). Nodes beyond the vector's length use 1.0. Models aged or
    /// contended machines — heterogeneity beyond GPU presence.
    pub cpu_speed: Vec<f64>,
    /// Observability sink ([`crate::obs`]); disabled by default. Recording
    /// never affects scheduling, so traces are a pure function of the
    /// configuration and seed.
    pub recorder: Recorder,
}

impl SimConfig {
    /// Defaults matching the paper's testbed.
    pub fn new(cluster: ClusterSpec, policy: Policy) -> SimConfig {
        SimConfig {
            cluster,
            policy,
            async_transfers: true,
            gpu_only: false,
            use_estimator: true,
            seed: 0x5EED,
            gpu: GpuParams::geforce_8800gt(),
            net: NetParams::gigabit_ethernet(),
            max_request_window: 256,
            trace_buckets: 0,
            cpu_speed: Vec::new(),
            recorder: Recorder::disabled(),
        }
    }
}

enum Ev {
    /// A data request arriving at a reader.
    Request {
        reader: usize,
        wnode: usize,
        thread: usize,
        proctype: DeviceKind,
        req_id: u64,
    },
    /// A data (or empty) reply arriving at a worker.
    Data {
        wnode: usize,
        thread: usize,
        req_id: u64,
        buffer: Option<DataBuffer>,
    },
    /// A recalculation buffer materializing at its owning reader.
    Recalc { reader: usize, buffer: DataBuffer },
    /// A task finished on a device. `idle_after` marks one-at-a-time
    /// execution (CPU / sync GPU) where completion frees the thread.
    TaskDone {
        node: usize,
        thread: usize,
        buffer: DataBuffer,
        proc_time: SimDuration,
        idle_after: bool,
    },
    /// An asynchronous GPU batch completed (frees the GPU manager thread).
    RoundDone {
        node: usize,
        thread: usize,
        started: SimTime,
        k: usize,
    },
}

struct ThreadState {
    device: DeviceId,
    dqaa: Dqaa,
    static_target: usize,
    dynamic: bool,
    /// Buffers requested but not yet popped from the shared queue.
    outstanding: usize,
    busy: bool,
    starved: bool,
    /// In-flight request send times, keyed by request id.
    sent: HashMap<u64, SimTime>,
    /// GPU state (engines + Algorithm 1 controller) for GPU threads.
    gpu: Option<(GpuEngines, AdaptiveStreams)>,
    util: UtilizationTracker,
    /// Target-window trace.
    req_trace: Vec<(SimTime, usize)>,
    /// Request round-trip latencies observed by this thread.
    latency_hist: DurationHistogram,
    /// Per-buffer service times on this device.
    service_hist: DurationHistogram,
    rr_cursor: usize,
}

impl ThreadState {
    fn target(&self) -> usize {
        if self.dynamic {
            // A batched GPU manager must hold the in-service batch *plus*
            // the DQAA window that hides the request latency; a
            // one-at-a-time worker needs only the DQAA window.
            let batch = self
                .gpu
                .as_ref()
                .map(|(_, ctl)| ctl.concurrent_events())
                .unwrap_or(0);
            self.dqaa.target() + batch
        } else {
            self.static_target
        }
    }
}

struct NodeState {
    /// Reader-side outgoing queue (sorted iff the policy selects at the
    /// sender).
    reader: SharedQueue,
    /// Worker-side shared ready queue.
    ready: SharedQueue,
    threads: Vec<ThreadState>,
}

struct NbiaWorld {
    policy: Policy,
    async_transfers: bool,
    max_window: usize,
    /// Per-node CPU slowdown-adjusted service multiplier (1.0 default).
    cpu_inv_speed: Vec<f64>,
    workload: WorkloadSpec,
    weights: Box<dyn WeightProvider>,
    net: Network,
    nodes: Vec<NodeState>,
    next_req_id: u64,
    finals_done: u64,
    finish: SimTime,
    tasks_by: HashMap<(DeviceKind, u8), u64>,
    total_done: u64,
    rec: Recorder,
}

/// Metric-label token for a device class.
fn kind_label(k: DeviceKind) -> &'static str {
    match k {
        DeviceKind::Cpu => "cpu",
        DeviceKind::Gpu => "gpu",
    }
}

impl NbiaWorld {
    fn weights_for(&self, buf: &DataBuffer) -> [f64; 2] {
        [
            self.weights.weight(buf, DeviceKind::Cpu),
            self.weights.weight(buf, DeviceKind::Gpu),
        ]
    }

    /// ThreadRequester: keep `outstanding` at the target window by sending
    /// requests to readers that currently have data (round-robin).
    fn pump_requests(
        &mut self,
        now: SimTime,
        node: usize,
        thread: usize,
        sched: &mut Scheduler<Ev>,
    ) {
        let n_nodes = self.nodes.len();
        loop {
            let t = &self.nodes[node].threads[thread];
            if t.outstanding >= t.target().min(self.max_window) {
                return;
            }
            // Choose a sender: round-robin over readers with queued data.
            let start = self.nodes[node].threads[thread].rr_cursor;
            let mut chosen = None;
            for off in 0..n_nodes {
                let r = (start + off) % n_nodes;
                if !self.nodes[r].reader.is_empty() {
                    chosen = Some(r);
                    break;
                }
            }
            let Some(reader) = chosen else {
                // Nothing anywhere: wait for a recalculation to materialize.
                self.nodes[node].threads[thread].starved = true;
                return;
            };
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            let proctype = self.nodes[node].threads[thread].device.kind;
            let arrival = self.net.send(now, node, reader, REQUEST_BYTES);
            {
                let t = &mut self.nodes[node].threads[thread];
                t.rr_cursor = (reader + 1) % n_nodes;
                t.outstanding += 1;
                t.starved = false;
                t.sent.insert(req_id, now);
            }
            sched.at(
                arrival,
                Ev::Request {
                    reader,
                    wnode: node,
                    thread,
                    proctype,
                    req_id,
                },
            );
        }
    }

    /// Wake every starved thread (a reader just became non-empty).
    fn wake_starved(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let idx: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| {
                ns.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.starved)
                    .map(move |(i, _)| (n, i))
            })
            .collect();
        for (n, t) in idx {
            self.pump_requests(now, n, t, sched);
        }
    }

    /// Pop one buffer from a node's ready queue per the policy, for a
    /// device of `kind`; settles the request-window accounting of the
    /// thread whose request fetched it.
    fn pop_ready(
        &mut self,
        now: SimTime,
        node: usize,
        kind: DeviceKind,
        sched: &mut Scheduler<Ev>,
    ) -> Option<DataBuffer> {
        let popped = if self.policy.kind.receiver_sorted() {
            self.nodes[node].ready.pop_best(kind)
        } else {
            self.nodes[node].ready.pop_fifo()
        };
        let (buffer, tag) = popped?;
        if let Some(owner) = tag {
            let owner = owner as usize;
            if owner < self.nodes[node].threads.len() {
                let t = &mut self.nodes[node].threads[owner];
                t.outstanding = t.outstanding.saturating_sub(1);
            }
            self.pump_requests(now, node, owner, sched);
        }
        Some(buffer)
    }

    /// Try to hand ready buffers to every idle thread of a node.
    fn dispatch(&mut self, now: SimTime, node: usize, sched: &mut Scheduler<Ev>) {
        // GPUs first: they drain the queue fastest.
        let order: Vec<usize> = {
            let ts = &self.nodes[node].threads;
            let mut idx: Vec<usize> = (0..ts.len()).collect();
            idx.sort_by_key(|&i| match ts[i].device.kind {
                DeviceKind::Gpu => 0,
                DeviceKind::Cpu => 1,
            });
            idx
        };
        for ti in order {
            if self.nodes[node].threads[ti].busy {
                continue;
            }
            if self.nodes[node].ready.is_empty() {
                break;
            }
            match self.nodes[node].threads[ti].device.kind {
                DeviceKind::Cpu => {
                    let Some(buffer) = self.pop_ready(now, node, DeviceKind::Cpu, sched) else {
                        continue;
                    };
                    let dev = DeviceRef::device(self.nodes[node].threads[ti].device);
                    self.rec.record(
                        now.as_nanos(),
                        dev,
                        EventKind::Dispatch {
                            buffer: buffer.id.0,
                            level: buffer.level,
                        },
                    );
                    self.rec.record(
                        now.as_nanos(),
                        dev,
                        EventKind::Start {
                            buffer: buffer.id.0,
                            level: buffer.level,
                        },
                    );
                    let inv = self.cpu_inv_speed.get(node).copied().unwrap_or(1.0);
                    let t = &mut self.nodes[node].threads[ti];
                    t.busy = true;
                    t.util.set_busy(now);
                    let dt = buffer.shape.cpu.mul_f64(inv);
                    sched.after(
                        dt,
                        Ev::TaskDone {
                            node,
                            thread: ti,
                            buffer,
                            proc_time: dt,
                            idle_after: true,
                        },
                    );
                }
                DeviceKind::Gpu => {
                    if self.async_transfers {
                        self.start_gpu_round(now, node, ti, sched);
                    } else {
                        let Some(buffer) = self.pop_ready(now, node, DeviceKind::Gpu, sched) else {
                            continue;
                        };
                        let dev = DeviceRef::device(self.nodes[node].threads[ti].device);
                        self.rec.record(
                            now.as_nanos(),
                            dev,
                            EventKind::Dispatch {
                                buffer: buffer.id.0,
                                level: buffer.level,
                            },
                        );
                        self.rec.record(
                            now.as_nanos(),
                            dev,
                            EventKind::Start {
                                buffer: buffer.id.0,
                                level: buffer.level,
                            },
                        );
                        let t = &mut self.nodes[node].threads[ti];
                        t.busy = true;
                        t.util.set_busy(now);
                        let (gpu, _) = t.gpu.as_mut().expect("GPU thread has engines");
                        let (_, fin) = gpu.run_sync(
                            now,
                            buffer.shape.bytes_in,
                            buffer.shape.gpu_kernel,
                            buffer.shape.bytes_out,
                        );
                        let dt = fin.since(now);
                        sched.at(
                            fin,
                            Ev::TaskDone {
                                node,
                                thread: ti,
                                buffer,
                                proc_time: dt,
                                idle_after: true,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Start one asynchronous GPU batch (Algorithm 1's loop body).
    fn start_gpu_round(&mut self, now: SimTime, node: usize, ti: usize, sched: &mut Scheduler<Ev>) {
        let k_target = {
            let t = &self.nodes[node].threads[ti];
            let (_, ctl) = t.gpu.as_ref().expect("GPU thread has a controller");
            ctl.concurrent_events().max(1)
        };
        let mut batch = Vec::with_capacity(k_target);
        while batch.len() < k_target {
            match self.pop_ready(now, node, DeviceKind::Gpu, sched) {
                Some(b) => batch.push(b),
                None => break,
            }
        }
        if batch.is_empty() {
            return;
        }
        let dev = DeviceRef::device(self.nodes[node].threads[ti].device);
        for b in &batch {
            self.rec.record(
                now.as_nanos(),
                dev,
                EventKind::Dispatch {
                    buffer: b.id.0,
                    level: b.level,
                },
            );
            self.rec.record(
                now.as_nanos(),
                dev,
                EventKind::Start {
                    buffer: b.id.0,
                    level: b.level,
                },
            );
        }
        let shapes: Vec<_> = batch.iter().map(|b| b.shape).collect();
        let rec = self.rec.clone();
        let t = &mut self.nodes[node].threads[ti];
        t.busy = true;
        t.util.set_busy(now);
        let (gpu, _) = t.gpu.as_mut().expect("GPU thread has engines");
        let (completions, end) = pipeline::execute_batch_traced(gpu, now, &shapes, &rec, dev);
        let k = batch.len();
        let round = end.since(now);
        let per_task = round / k as u64;
        for (buffer, &fin) in batch.into_iter().zip(&completions) {
            sched.at(
                fin,
                Ev::TaskDone {
                    node,
                    thread: ti,
                    buffer,
                    proc_time: per_task,
                    idle_after: false,
                },
            );
        }
        sched.at(
            end,
            Ev::RoundDone {
                node,
                thread: ti,
                started: now,
                k,
            },
        );
    }

    /// Completion-side bookkeeping shared by all devices.
    fn complete_task(
        &mut self,
        now: SimTime,
        node: usize,
        thread: usize,
        buffer: &DataBuffer,
        sched: &mut Scheduler<Ev>,
    ) {
        let kind = self.nodes[node].threads[thread].device.kind;
        *self.tasks_by.entry((kind, buffer.level)).or_insert(0) += 1;
        self.total_done += 1;
        if buffer.level == 0 && self.workload.is_recalc(buffer.task) {
            // Classifier rejected the low-resolution result: loop the tile
            // back to its owning reader at the next resolution.
            let owner = (buffer.task % self.nodes.len() as u64) as usize;
            let arrival = self.net.send(now, node, owner, RECALC_BYTES);
            let high = self.workload.high_buffer(buffer.task);
            sched.at(
                arrival,
                Ev::Recalc {
                    reader: owner,
                    buffer: high,
                },
            );
        } else {
            self.finals_done += 1;
            if now > self.finish {
                self.finish = now;
            }
        }
    }

    /// Idle-side bookkeeping: DQAA update, re-request, re-dispatch.
    fn thread_idle(
        &mut self,
        now: SimTime,
        node: usize,
        thread: usize,
        processed: &[SimDuration],
        sched: &mut Scheduler<Ev>,
    ) {
        let (dev, target) = {
            let t = &mut self.nodes[node].threads[thread];
            t.busy = false;
            t.util.set_idle(now);
            for &dt in processed {
                t.dqaa.observe_processing(dt);
                t.service_hist.record(dt);
            }
            let target = t.target();
            t.req_trace.push((now, target));
            (DeviceRef::device(t.device), target)
        };
        self.rec.record(
            now.as_nanos(),
            dev,
            EventKind::DqaaWindow {
                target: target as u32,
            },
        );
        if self.rec.is_enabled() {
            let label = kind_label(dev.kind.expect("worker threads are device-scoped"));
            for &dt in processed {
                self.rec
                    .histogram_record("service_time", &[("device", label)], dt);
            }
        }
        self.pump_requests(now, node, thread, sched);
        self.dispatch(now, node, sched);
    }
}

impl World for NbiaWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Request {
                reader,
                wnode,
                thread,
                proctype,
                req_id,
            } => {
                let popped = if self.policy.kind.sender_selects() {
                    self.nodes[reader].reader.pop_best(proctype)
                } else {
                    self.nodes[reader].reader.pop_fifo()
                };
                let buffer = popped.map(|(b, _)| b);
                if self.policy.kind.sender_selects() {
                    if let Some(b) = &buffer {
                        self.rec.record(
                            now.as_nanos(),
                            DeviceRef::node_scope(reader),
                            EventKind::DbsaSelect {
                                buffer: b.id.0,
                                proctype,
                            },
                        );
                    }
                }
                let bytes = buffer
                    .as_ref()
                    .map(DataBuffer::wire_bytes)
                    .unwrap_or(REQUEST_BYTES);
                let arrival = self.net.send(now, reader, wnode, bytes);
                sched.at(
                    arrival,
                    Ev::Data {
                        wnode,
                        thread,
                        req_id,
                        buffer,
                    },
                );
            }
            Ev::Data {
                wnode,
                thread,
                req_id,
                buffer,
            } => {
                let latency = {
                    let t = &mut self.nodes[wnode].threads[thread];
                    t.sent.remove(&req_id).map(|sent| now.since(sent))
                };
                if let Some(lat) = latency {
                    let kind = {
                        let t = &mut self.nodes[wnode].threads[thread];
                        t.dqaa.observe_latency(lat);
                        t.latency_hist.record(lat);
                        t.device.kind
                    };
                    self.rec.histogram_record(
                        "request_latency",
                        &[("device", kind_label(kind))],
                        lat,
                    );
                }
                match buffer {
                    Some(buffer) => {
                        self.rec.record(
                            now.as_nanos(),
                            DeviceRef::node_scope(wnode),
                            EventKind::Enqueue {
                                buffer: buffer.id.0,
                                level: buffer.level,
                            },
                        );
                        let w = self.weights_for(&buffer);
                        self.nodes[wnode]
                            .ready
                            .insert(buffer, w, Some(thread as u64));
                        self.dispatch(now, wnode, sched);
                    }
                    None => {
                        // Empty reply: the reader drained since the request
                        // was issued. Release the window slot and retry.
                        let t = &mut self.nodes[wnode].threads[thread];
                        t.outstanding = t.outstanding.saturating_sub(1);
                        self.pump_requests(now, wnode, thread, sched);
                    }
                }
            }
            Ev::Recalc { reader, buffer } => {
                let w = self.weights_for(&buffer);
                // Recirculated work takes FIFO precedence over unread
                // initial tiles (the demand-driven Start→Reader loop keeps
                // in-flight tiles ahead of not-yet-started ones).
                self.nodes[reader].reader.insert_banded(buffer, w, None, 0);
                self.wake_starved(now, sched);
            }
            Ev::TaskDone {
                node,
                thread,
                buffer,
                proc_time,
                idle_after,
            } => {
                let kind = self.nodes[node].threads[thread].device.kind;
                self.rec.record(
                    now.as_nanos(),
                    DeviceRef::device(self.nodes[node].threads[thread].device),
                    EventKind::Finish {
                        buffer: buffer.id.0,
                        level: buffer.level,
                        proc_ns: proc_time.as_nanos(),
                    },
                );
                self.rec
                    .counter_add("tasks_finished", &[("device", kind_label(kind))], 1);
                self.complete_task(now, node, thread, &buffer, sched);
                if idle_after {
                    self.thread_idle(now, node, thread, &[proc_time], sched);
                }
            }
            Ev::RoundDone {
                node,
                thread,
                started,
                k,
            } => {
                let round = now.since(started);
                let (dev, streams) = {
                    let t = &mut self.nodes[node].threads[thread];
                    let (_, ctl) = t.gpu.as_mut().expect("GPU thread has a controller");
                    let secs = round.as_secs_f64();
                    if secs > 0.0 {
                        ctl.observe_throughput(k as f64 / secs);
                    }
                    (DeviceRef::device(t.device), ctl.concurrent_events())
                };
                self.rec.record(
                    now.as_nanos(),
                    dev,
                    EventKind::Streams {
                        count: streams as u32,
                    },
                );
                let per_task = round / k.max(1) as u64;
                let processed = vec![per_task; k];
                self.thread_idle(now, node, thread, &processed, sched);
            }
        }
    }
}

/// Build the estimator-backed weight provider: phase-one benchmark of 30
/// jobs across the workload's tile-size range with measurement noise, then
/// a kNN fit with the paper's `k = 2`.
fn build_estimator(cfg: &SimConfig, workload: &WorkloadSpec) -> EstimatorWeights {
    let oracle = OracleWeights::new(cfg.gpu.clone(), cfg.async_transfers);
    let mut rng = SimRng::new(cfg.seed).fork("estimator-profile");
    let mut profile = ProfileStore::new("nbia");
    let sides: Vec<u32> = {
        // Geometric sweep low..high plus the two exact workload sizes.
        let mut s = vec![workload.low_side, workload.high_side];
        let mut side = workload.low_side;
        while side < workload.high_side {
            s.push(side);
            side *= 2;
        }
        s
    };
    let mut count = 0;
    while count < 30 {
        for &side in &sides {
            if count >= 30 {
                break;
            }
            let buf = if side >= workload.high_side {
                workload.high_buffer(0)
            } else {
                // Shape for the probed side.
                DataBuffer {
                    shape: workload.cost.tile(side),
                    params: anthill_estimator::TaskParams::nums(&[f64::from(side)]),
                    ..workload.low_buffer(0)
                }
            };
            let cpu = oracle.predict_time(&buf, DeviceKind::Cpu) * rng.lognormal_noise(0.08);
            let gpu = oracle.predict_time(&buf, DeviceKind::Gpu) * rng.lognormal_noise(0.08);
            profile.add_cpu_gpu(buf.params.clone(), cpu, gpu);
            count += 1;
        }
    }
    EstimatorWeights::new(anthill_estimator::KnnEstimator::fit_default(profile))
}

/// Run the NBIA workload on the configured cluster; returns measurements.
pub fn run_nbia(cfg: &SimConfig, workload: &WorkloadSpec) -> SimReport {
    let weights: Box<dyn WeightProvider> = if cfg.use_estimator {
        Box::new(build_estimator(cfg, workload))
    } else {
        Box::new(OracleWeights::new(cfg.gpu.clone(), cfg.async_transfers))
    };

    let n_nodes = cfg.cluster.len();
    let mut nodes = Vec::with_capacity(n_nodes);
    for (ni, spec) in cfg.cluster.nodes.iter().enumerate() {
        let mut threads = Vec::new();
        let mk_thread = |device: DeviceId, dynamic: bool, static_target: usize, gpu| ThreadState {
            device,
            dqaa: Dqaa::new(cfg.max_request_window),
            static_target,
            dynamic,
            outstanding: 0,
            busy: false,
            starved: false,
            sent: HashMap::new(),
            gpu,
            util: UtilizationTracker::new(),
            req_trace: Vec::new(),
            latency_hist: DurationHistogram::new(),
            service_hist: DurationHistogram::new(),
            rr_cursor: ni,
        };
        let dynamic = cfg.policy.kind.dynamic_requests();
        if !cfg.gpu_only {
            for c in 0..spec.cpu_cores {
                threads.push(mk_thread(
                    DeviceId {
                        node: ni,
                        kind: DeviceKind::Cpu,
                        index: c,
                    },
                    dynamic,
                    cfg.policy.request_size,
                    None,
                ));
            }
        }
        for g in 0..spec.gpus {
            threads.push(mk_thread(
                DeviceId {
                    node: ni,
                    kind: DeviceKind::Gpu,
                    index: g,
                },
                dynamic,
                cfg.policy.request_size,
                Some((
                    GpuEngines::new(cfg.gpu.clone()),
                    AdaptiveStreams::new(
                        cfg.gpu.max_concurrent_events(
                            workload.cost.tile(workload.high_side).footprint(),
                        ),
                    ),
                )),
            ));
        }
        nodes.push(NodeState {
            reader: SharedQueue::new(),
            ready: SharedQueue::new(),
            threads,
        });
    }
    assert!(
        nodes.iter().any(|n| !n.threads.is_empty()),
        "no worker devices configured"
    );

    let cpu_inv_speed: Vec<f64> = cfg
        .cpu_speed
        .iter()
        .map(|&f| if f > 0.0 { 1.0 / f } else { 1.0 })
        .collect();
    let mut world = NbiaWorld {
        policy: cfg.policy,
        async_transfers: cfg.async_transfers,
        max_window: cfg.max_request_window,
        cpu_inv_speed,
        workload: workload.clone(),
        weights,
        net: Network::new(n_nodes, cfg.net.clone()),
        nodes,
        next_req_id: 0,
        finals_done: 0,
        finish: SimTime::ZERO,
        tasks_by: HashMap::new(),
        total_done: 0,
        rec: cfg.recorder.clone(),
    };

    // Decluster the tiles round-robin over the readers. Initial tiles sit
    // in the low-priority FIFO band; recirculated buffers preempt them.
    for tile in 0..workload.tiles {
        let buf = workload.low_buffer(tile);
        let w = world.weights_for(&buf);
        let owner = (tile % n_nodes as u64) as usize;
        world.nodes[owner].reader.insert_banded(buf, w, None, 1);
    }

    let mut engine = Engine::new(world);
    // Kick every worker thread's requester at t = 0 via empty data events.
    {
        // Pump directly before running: schedule a zero-time kick per thread.
        let n_threads: Vec<(usize, usize)> = engine
            .world()
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| (0..ns.threads.len()).map(move |t| (n, t)))
            .collect();
        for (n, t) in n_threads {
            engine.schedule(
                SimTime::ZERO,
                Ev::Data {
                    wnode: n,
                    thread: t,
                    req_id: u64::MAX, // unknown id: pure kick
                    buffer: None,
                },
            );
        }
    }
    let outcome = engine.run_bounded(SimTime::MAX, 2_000_000_000);
    assert_eq!(
        outcome,
        anthill_simkit::RunOutcome::Drained,
        "simulation exceeded the event budget"
    );

    let world = engine.into_world();
    assert_eq!(
        world.finals_done, workload.tiles,
        "every tile must be finally classified"
    );
    assert_eq!(world.total_done, workload.total_buffers());

    let makespan = world.finish.since(SimTime::ZERO);
    cfg.recorder
        .gauge_set("makespan_seconds", &[], makespan.as_secs_f64());
    cfg.recorder
        .counter_add("tiles_classified", &[], world.finals_done);
    let horizon = world.finish;
    let mut request_traces = Vec::new();
    let mut util_traces = Vec::new();
    let mut utilization = Vec::new();
    let mut stream_traces = Vec::new();
    let mut latency_hists = Vec::new();
    let mut service_hists = Vec::new();
    for ns in &world.nodes {
        for t in &ns.threads {
            utilization.push((t.device, t.util.utilization(horizon)));
            request_traces.push((t.device, t.req_trace.clone()));
            latency_hists.push((t.device, t.latency_hist.clone()));
            service_hists.push((t.device, t.service_hist.clone()));
            if cfg.trace_buckets > 0 && horizon > SimTime::ZERO {
                let bucket =
                    SimDuration::from_nanos((horizon.as_nanos() / cfg.trace_buckets as u64).max(1));
                util_traces.push((t.device, t.util.trace(horizon, bucket)));
            }
            if let Some((_, ctl)) = &t.gpu {
                stream_traces.push((t.device, ctl.history().to_vec()));
            }
        }
    }

    SimReport {
        makespan,
        cpu_baseline: workload.cpu_baseline(),
        tasks_by: world.tasks_by,
        total_tasks: world.total_done,
        request_traces,
        util_traces,
        utilization,
        stream_traces,
        latency_hists,
        service_hists,
    }
}
