//! The simulated cluster executor: a thin DES driver of the shared
//! scheduling engine ([`crate::engine`]), run in virtual time over the
//! hardware models of `anthill-hetsim`.
//!
//! Topology (matching the paper's NBIA deployment, Section 6): every node
//! hosts one *reader* instance (the tiles are declustered round-robin over
//! the nodes' local disks) and one *worker* instance (the fused NBIA
//! filter) with one worker thread per CPU core and one manager thread per
//! GPU. The reader→worker stream is the n×m demand-driven channel the
//! three policies configure — but the policies themselves (queue ordering,
//! DBSA selection, DQAA windows, dispatch) live entirely in the engine;
//! this module only prices its decisions: requests and replies traverse
//! the modeled network, tasks occupy modeled devices, and completions are
//! fed back as engine callbacks.
//!
//! Recalculated tiles loop back to the owning reader through a small
//! control message, reproducing the Classifier→Start→Reader cycle of
//! Figure 1.

use std::collections::HashMap;

use anthill_estimator::ProfileStore;
use anthill_hetsim::{
    ClusterSpec, DeviceId, DeviceKind, GpuEngines, GpuParams, NetParams, Network,
};
use anthill_simkit::{Scheduler, SimDuration, SimRng, SimTime, World};

use crate::buffer::DataBuffer;
use crate::engine::core::{Executor, Transport, WorkerRef};
use crate::engine::{Engine as SchedEngine, EngineConfig, VirtualClock};
use crate::faults::{FaultConfig, FaultInjector, MessageFate};
use crate::membership::{MemberAction, MembershipSchedule};
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::learned::{LearnedConfig, LearnedWeights};
use crate::policy::Policy;
use crate::sim::report::SimReport;
use crate::sim::workload::WorkloadSpec;
use crate::transfer::{pipeline, AdaptiveStreams};
use crate::weights::{EstimatorWeights, OracleWeights, WeightProvider};

/// Bytes of a data-request control message.
const REQUEST_BYTES: u64 = 64;
/// Bytes of a recalculation notification message.
const RECALC_BYTES: u64 = 128;

/// Configuration of one simulated run.
#[derive(Clone)]
pub struct SimConfig {
    /// The cluster topology.
    pub cluster: ClusterSpec,
    /// The stream scheduling policy.
    pub policy: Policy,
    /// Use the asynchronous transfer pipeline (Algorithm 1) on GPUs.
    pub async_transfers: bool,
    /// Disable CPU worker threads (GPU-only configurations).
    pub gpu_only: bool,
    /// Weight buffers with the kNN estimator (vs the oracle cost model).
    pub use_estimator: bool,
    /// Lognormal sigma of the phase-one estimator benchmark noise. The
    /// default 0.08 matches the paper's measurement jitter; larger values
    /// model a stale or badly calibrated profile that online learning
    /// (AFFINITY/BANDIT) can correct at run time.
    pub estimator_noise: f64,
    /// Root RNG seed (estimator profile noise, learned-policy hashing).
    pub seed: u64,
    /// GPU timing parameters.
    pub gpu: GpuParams,
    /// Network timing parameters.
    pub net: NetParams,
    /// Upper bound on any worker's request window.
    pub max_request_window: usize,
    /// Buckets for utilization traces (0 disables trace collection).
    pub trace_buckets: usize,
    /// Per-node CPU speed factors (1.0 = the calibrated core; 0.5 = half
    /// speed). Nodes beyond the vector's length use 1.0. Models aged or
    /// contended machines — heterogeneity beyond GPU presence.
    pub cpu_speed: Vec<f64>,
    /// Observability sink ([`crate::obs`]); disabled by default. Recording
    /// never affects scheduling, so traces are a pure function of the
    /// configuration and seed.
    pub recorder: Recorder,
    /// Fault schedule + recovery knobs ([`crate::faults`]); none by
    /// default. An active message-drop or death schedule needs
    /// [`crate::faults::RecoveryConfig::enabled`], or lost demand is never
    /// re-pumped and the run cannot drain.
    pub faults: FaultConfig,
    /// Scheduled membership actions ([`crate::membership`]); empty by
    /// default. Joins and drains fire as the run's completion count
    /// crosses each action's threshold (so a threshold of 0 fires right
    /// after the first completion here — the DES applies membership only
    /// at completion events). The schedule must keep at least one
    /// assignable worker at all times or the run stalls.
    pub membership: MembershipSchedule,
}

impl SimConfig {
    /// Defaults matching the paper's testbed.
    pub fn new(cluster: ClusterSpec, policy: Policy) -> SimConfig {
        SimConfig {
            cluster,
            policy,
            async_transfers: true,
            gpu_only: false,
            use_estimator: true,
            estimator_noise: 0.08,
            seed: 0x5EED,
            gpu: GpuParams::geforce_8800gt(),
            net: NetParams::gigabit_ethernet(),
            max_request_window: 256,
            trace_buckets: 0,
            cpu_speed: Vec::new(),
            recorder: Recorder::disabled(),
            faults: FaultConfig::none(),
            membership: MembershipSchedule::none(),
        }
    }
}

enum Ev {
    /// A data request arriving at a reader.
    Request {
        reader: usize,
        wnode: usize,
        thread: usize,
        proctype: DeviceKind,
        req_id: u64,
    },
    /// A data (or empty) reply arriving at a worker.
    Data {
        wnode: usize,
        thread: usize,
        req_id: u64,
        buffer: Option<DataBuffer>,
    },
    /// A recalculation buffer materializing at its owning reader.
    Recalc { reader: usize, buffer: DataBuffer },
    /// A task finished on a device. `idle_after` marks one-at-a-time
    /// execution (CPU / sync GPU) where completion frees the thread.
    TaskDone {
        node: usize,
        thread: usize,
        buffer: DataBuffer,
        proc_time: SimDuration,
        idle_after: bool,
    },
    /// An asynchronous GPU batch completed (frees the GPU manager thread).
    RoundDone {
        node: usize,
        thread: usize,
        started: SimTime,
        k: usize,
    },
    /// A per-request retry timer fired (no-op if the reply already
    /// settled; timers are never cancelled).
    Timeout {
        node: usize,
        thread: usize,
        req_id: u64,
    },
    /// A scheduled permanent worker death ([`FaultConfig::deaths`]).
    WorkerDeath { node: usize, thread: usize },
}

/// Per-worker execution state owned by the driver: the engine schedules,
/// this executes.
struct WorkerExec {
    /// GPU engines + Algorithm 1 stream controller for GPU slots.
    gpu: Option<(GpuEngines, AdaptiveStreams)>,
    /// Slot killed by a [`FaultConfig::deaths`] entry: completion events
    /// still in the DES queue are dropped on arrival.
    dead: bool,
    /// Buffers currently executing on the slot — the in-flight set handed
    /// to [`SchedEngine::worker_died`] for reassignment at death time.
    running: Vec<DataBuffer>,
}

impl WorkerExec {
    fn new(gpu: Option<(GpuEngines, AdaptiveStreams)>) -> WorkerExec {
        WorkerExec {
            gpu,
            dead: false,
            running: Vec::new(),
        }
    }
}

/// The cost side of the simulation: everything the engine's decisions are
/// priced with.
struct DriverState {
    async_transfers: bool,
    /// Per-node CPU slowdown-adjusted service multiplier (1.0 default).
    cpu_inv_speed: Vec<f64>,
    net: Network,
    /// `[node][worker]` execution state, parallel to the engine topology.
    exec: Vec<Vec<WorkerExec>>,
    rec: Recorder,
    /// Deterministic fault decisions, consulted at every message hop and
    /// task completion.
    injector: FaultInjector,
}

/// One-event adapter binding the driver state and the DES scheduler into
/// the engine's [`Transport`] + [`Executor`] view.
struct SimDriver<'a> {
    now: SimTime,
    drv: &'a mut DriverState,
    sched: &'a mut Scheduler<Ev>,
}

impl Transport for SimDriver<'_> {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        let extra = match self.drv.injector.message_fate(from.node, from.worker) {
            MessageFate::Drop => {
                // Lost on the wire before reaching the network model. The
                // request's retry timer recovers the demand slot.
                self.drv.rec.counter_add("messages_dropped", &[], 1);
                return;
            }
            MessageFate::Delay(dly) => dly,
            MessageFate::Deliver => SimDuration::ZERO,
        };
        let arrival = self
            .drv
            .net
            .send(self.now, from.node, reader, REQUEST_BYTES)
            + extra;
        self.sched.at(
            arrival,
            Ev::Request {
                reader,
                wnode: from.node,
                thread: from.worker,
                proctype: from.device.kind,
                req_id,
            },
        );
    }

    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        self.sched.at(
            fire_at,
            Ev::Timeout {
                node: worker.node,
                thread: worker.worker,
                req_id,
            },
        );
    }
}

impl Executor for SimDriver<'_> {
    fn batch_limit(&mut self, worker: WorkerRef) -> usize {
        match worker.device.kind {
            DeviceKind::Cpu => 1,
            DeviceKind::Gpu => {
                if self.drv.async_transfers {
                    let (_, ctl) = self.drv.exec[worker.node][worker.worker]
                        .gpu
                        .as_ref()
                        .expect("GPU slot has a controller");
                    ctl.concurrent_events().max(1)
                } else {
                    1
                }
            }
        }
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        let now = self.now;
        // Remember what is executing: a death mid-run hands these copies
        // back to the engine for reassignment.
        self.drv.exec[worker.node][worker.worker]
            .running
            .extend(batch.iter().cloned());
        match worker.device.kind {
            DeviceKind::Cpu => {
                let inv = self
                    .drv
                    .cpu_inv_speed
                    .get(worker.node)
                    .copied()
                    .unwrap_or(1.0);
                for buffer in batch {
                    let dt = buffer.shape.cpu.mul_f64(inv);
                    self.sched.at(
                        now + dt,
                        Ev::TaskDone {
                            node: worker.node,
                            thread: worker.worker,
                            buffer,
                            proc_time: dt,
                            idle_after: true,
                        },
                    );
                }
            }
            DeviceKind::Gpu => {
                let (gpu, _) = self.drv.exec[worker.node][worker.worker]
                    .gpu
                    .as_mut()
                    .expect("GPU slot has engines");
                if !self.drv.async_transfers {
                    for buffer in batch {
                        let (_, fin) = gpu.run_sync(
                            now,
                            buffer.shape.bytes_in,
                            buffer.shape.gpu_kernel,
                            buffer.shape.bytes_out,
                        );
                        let dt = fin.since(now);
                        self.sched.at(
                            fin,
                            Ev::TaskDone {
                                node: worker.node,
                                thread: worker.worker,
                                buffer,
                                proc_time: dt,
                                idle_after: true,
                            },
                        );
                    }
                    return;
                }
                // Algorithm 1's loop body: one overlapped batch.
                let shapes: Vec<_> = batch.iter().map(|b| b.shape).collect();
                let dev = DeviceRef::device(worker.device);
                let (completions, end) =
                    pipeline::execute_batch_traced(gpu, now, &shapes, &self.drv.rec, dev);
                let k = batch.len();
                let round = end.since(now);
                let per_task = round / k as u64;
                for (buffer, &fin) in batch.into_iter().zip(&completions) {
                    self.sched.at(
                        fin,
                        Ev::TaskDone {
                            node: worker.node,
                            thread: worker.worker,
                            buffer,
                            proc_time: per_task,
                            idle_after: false,
                        },
                    );
                }
                self.sched.at(
                    end,
                    Ev::RoundDone {
                        node: worker.node,
                        thread: worker.worker,
                        started: now,
                        k,
                    },
                );
            }
        }
    }
}

struct NbiaWorld {
    engine: SchedEngine<VirtualClock, Box<dyn WeightProvider>>,
    clock: VirtualClock,
    drv: DriverState,
    workload: WorkloadSpec,
    /// Completion-keyed join/drain schedule, drained as the run advances.
    membership: MembershipSchedule,
    /// GPU timing parameters, kept for slots created by mid-run joins.
    gpu: GpuParams,
    finals_done: u64,
    finish: SimTime,
}

impl NbiaWorld {
    /// Apply every membership action due at the current completion count.
    /// A join grows the execution table *before* telling the engine (the
    /// join pump may dispatch to the new slot immediately); a drain goes
    /// through the engine, which stops assignment and releases the slot
    /// once its in-flight work settles.
    fn apply_membership(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        while let Some(action) = self.membership.pop_due(self.engine.total_done()) {
            match action {
                MemberAction::Join { node, kind } => {
                    let index = self
                        .engine
                        .worker_refs()
                        .into_iter()
                        .filter(|w| w.node == node && w.device.kind == kind)
                        .count();
                    let device = DeviceId { node, kind, index };
                    match kind {
                        DeviceKind::Cpu => {
                            self.drv.exec[node].push(WorkerExec::new(None));
                            let mut d = SimDriver {
                                now,
                                drv: &mut self.drv,
                                sched,
                            };
                            self.engine.join_worker(node, device, &mut d);
                        }
                        DeviceKind::Gpu => {
                            let ctl = AdaptiveStreams::new(
                                self.gpu
                                    .max_concurrent_events(self.workload.high_shape().footprint()),
                            );
                            let streams = ctl.concurrent_events();
                            self.drv.exec[node].push(WorkerExec::new(Some((
                                GpuEngines::new(self.gpu.clone()),
                                ctl,
                            ))));
                            let mut d = SimDriver {
                                now,
                                drv: &mut self.drv,
                                sched,
                            };
                            let wi = self.engine.join_worker(node, device, &mut d);
                            // The join pump ran with a zero reserve; DQAA
                            // folds the stream reserve in from the next
                            // window recomputation on.
                            self.engine.set_batch_reserve(node, wi, streams);
                        }
                    }
                }
                MemberAction::Drain { node, worker } => self.engine.drain_worker(node, worker),
            }
        }
    }
}

impl World for NbiaWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        self.clock.set(now);
        match ev {
            Ev::Request {
                reader,
                wnode,
                thread,
                proctype,
                req_id,
            } => {
                let buffer = self.engine.answer_request(reader, proctype);
                let extra = match self.drv.injector.message_fate(wnode, thread) {
                    MessageFate::Drop => {
                        // A lost reply must not lose its payload: the
                        // popped buffer re-enters the reader's queue (at
                        // recirculation precedence — it was in flight).
                        // The requester's slot is recovered by its timer.
                        self.drv.rec.counter_add("messages_dropped", &[], 1);
                        if let Some(buffer) = buffer {
                            let mut d = SimDriver {
                                now,
                                drv: &mut self.drv,
                                sched,
                            };
                            self.engine.recirculate(reader, buffer, &mut d);
                        }
                        return;
                    }
                    MessageFate::Delay(dly) => dly,
                    MessageFate::Deliver => SimDuration::ZERO,
                };
                let bytes = buffer
                    .as_ref()
                    .map(DataBuffer::wire_bytes)
                    .unwrap_or(REQUEST_BYTES);
                let arrival = self.drv.net.send(now, reader, wnode, bytes) + extra;
                sched.at(
                    arrival,
                    Ev::Data {
                        wnode,
                        thread,
                        req_id,
                        buffer,
                    },
                );
            }
            Ev::Data {
                wnode,
                thread,
                req_id,
                buffer,
            } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine
                    .data_arrived(wnode, thread, req_id, buffer, &mut d);
            }
            Ev::Recalc { reader, buffer } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.recirculate(reader, buffer, &mut d);
            }
            Ev::TaskDone {
                node,
                thread,
                buffer,
                proc_time,
                idle_after,
            } => {
                let slot = &mut self.drv.exec[node][thread];
                if slot.dead {
                    // The slot died while this ran; `worker_died` already
                    // reclaimed the buffer from the in-flight set.
                    return;
                }
                slot.running.retain(|b| b.id != buffer.id);
                if self.drv.injector.task_fails(node, thread) {
                    // The device time was spent but the result is garbage:
                    // re-enqueue the buffer, decay the slot's health.
                    let mut d = SimDriver {
                        now,
                        drv: &mut self.drv,
                        sched,
                    };
                    self.engine.task_failed(node, thread, buffer, &mut d);
                    if idle_after {
                        self.engine.worker_idle(node, thread, &[proc_time], &mut d);
                    }
                    return;
                }
                self.engine.task_finished(node, thread, &buffer, proc_time);
                self.apply_membership(now, sched);
                if buffer.level == 0 && self.workload.is_recalc(buffer.task) {
                    // Classifier rejected the low-resolution result: loop
                    // the tile back to its owning reader at the next
                    // resolution.
                    let owner = (buffer.task % self.engine.node_count() as u64) as usize;
                    let arrival = self.drv.net.send(now, node, owner, RECALC_BYTES);
                    let high = self.workload.high_buffer(buffer.task);
                    sched.at(
                        arrival,
                        Ev::Recalc {
                            reader: owner,
                            buffer: high,
                        },
                    );
                } else {
                    self.finals_done += 1;
                    if now > self.finish {
                        self.finish = now;
                    }
                }
                if idle_after {
                    let mut d = SimDriver {
                        now,
                        drv: &mut self.drv,
                        sched,
                    };
                    self.engine.worker_idle(node, thread, &[proc_time], &mut d);
                }
            }
            Ev::RoundDone {
                node,
                thread,
                started,
                k,
            } => {
                if self.drv.exec[node][thread].dead {
                    return;
                }
                let round = now.since(started);
                let streams = {
                    let (_, ctl) = self.drv.exec[node][thread]
                        .gpu
                        .as_mut()
                        .expect("GPU slot has a controller");
                    let secs = round.as_secs_f64();
                    if secs > 0.0 {
                        ctl.observe_throughput(k as f64 / secs);
                    }
                    ctl.concurrent_events()
                };
                self.drv.rec.record(
                    now.as_nanos(),
                    DeviceRef::device(self.engine.worker_device(node, thread)),
                    EventKind::Streams {
                        count: streams as u32,
                    },
                );
                self.engine.set_batch_reserve(node, thread, streams);
                let per_task = round / k.max(1) as u64;
                let processed = vec![per_task; k];
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.worker_idle(node, thread, &processed, &mut d);
            }
            Ev::Timeout {
                node,
                thread,
                req_id,
            } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.request_timed_out(node, thread, req_id, &mut d);
            }
            Ev::WorkerDeath { node, thread } => {
                let slot = &mut self.drv.exec[node][thread];
                if slot.dead {
                    return;
                }
                slot.dead = true;
                let inflight = std::mem::take(&mut slot.running);
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.worker_died(node, thread, inflight, &mut d);
            }
        }
    }
}

/// Build the estimator-backed weight provider: phase-one benchmark of 30
/// jobs across the workload's tile-size range with measurement noise, then
/// a kNN fit with the paper's `k = 2`.
fn build_estimator(cfg: &SimConfig, workload: &WorkloadSpec) -> EstimatorWeights {
    let oracle = OracleWeights::new(cfg.gpu.clone(), cfg.async_transfers);
    let mut rng = SimRng::new(cfg.seed).fork("estimator-profile");
    let mut profile = ProfileStore::new("nbia");
    let sides: Vec<u32> = {
        // Geometric sweep low..high plus the two exact workload sizes.
        let mut s = vec![workload.low_side, workload.high_side];
        let mut side = workload.low_side;
        while side < workload.high_side {
            s.push(side);
            side *= 2;
        }
        s
    };
    let mut count = 0;
    while count < 30 {
        for &side in &sides {
            if count >= 30 {
                break;
            }
            let buf = if side >= workload.high_side {
                workload.high_buffer(0)
            } else {
                // Shape for the probed side.
                DataBuffer {
                    shape: workload.cost.tile(side),
                    params: anthill_estimator::TaskParams::nums(&[f64::from(side)]),
                    ..workload.low_buffer(0)
                }
            };
            let cpu = oracle.predict_time(&buf, DeviceKind::Cpu)
                * rng.lognormal_noise(cfg.estimator_noise);
            let gpu = oracle.predict_time(&buf, DeviceKind::Gpu)
                * rng.lognormal_noise(cfg.estimator_noise);
            profile.add_cpu_gpu(buf.params.clone(), cpu, gpu);
            count += 1;
        }
    }
    EstimatorWeights::new(anthill_estimator::KnnEstimator::fit_default(profile))
}

/// Run the NBIA workload on the configured cluster; returns measurements.
pub fn run_nbia(cfg: &SimConfig, workload: &WorkloadSpec) -> SimReport {
    let base: Box<dyn WeightProvider> = if cfg.use_estimator {
        Box::new(build_estimator(cfg, workload))
    } else {
        Box::new(OracleWeights::new(cfg.gpu.clone(), cfg.async_transfers))
    };
    let weights: Box<dyn WeightProvider> = if cfg.policy.kind.learned() {
        Box::new(LearnedWeights::new(
            cfg.policy.kind,
            base,
            LearnedConfig::standard(cfg.seed),
        ))
    } else {
        base
    };

    let clock = VirtualClock::new();
    let mut engine = SchedEngine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_request_window,
            recovery: cfg.faults.recovery,
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );

    let n_nodes = cfg.cluster.len();
    let mut exec: Vec<Vec<WorkerExec>> = Vec::with_capacity(n_nodes);
    for (ni, spec) in cfg.cluster.nodes.iter().enumerate() {
        let node = engine.add_node();
        debug_assert_eq!(node, ni);
        let mut slots = Vec::new();
        if !cfg.gpu_only {
            for c in 0..spec.cpu_cores {
                engine.add_worker(
                    node,
                    DeviceId {
                        node: ni,
                        kind: DeviceKind::Cpu,
                        index: c,
                    },
                );
                slots.push(WorkerExec::new(None));
            }
        }
        for g in 0..spec.gpus {
            let wi = engine.add_worker(
                node,
                DeviceId {
                    node: ni,
                    kind: DeviceKind::Gpu,
                    index: g,
                },
            );
            let ctl = AdaptiveStreams::new(
                cfg.gpu
                    .max_concurrent_events(workload.high_shape().footprint()),
            );
            engine.set_batch_reserve(node, wi, ctl.concurrent_events());
            slots.push(WorkerExec::new(Some((
                GpuEngines::new(cfg.gpu.clone()),
                ctl,
            ))));
        }
        exec.push(slots);
    }
    assert!(engine.worker_count() > 0, "no worker devices configured");

    // Decluster the tiles round-robin over the readers. Initial tiles sit
    // in the low-priority FIFO band; recirculated buffers preempt them.
    for tile in 0..workload.tiles {
        let owner = (tile % n_nodes as u64) as usize;
        engine.seed_reader(owner, workload.low_buffer(tile));
    }

    let workers = engine.worker_refs();
    let slot_counts: Vec<usize> = exec.iter().map(Vec::len).collect();
    let cpu_inv_speed: Vec<f64> = cfg
        .cpu_speed
        .iter()
        .map(|&f| if f > 0.0 { 1.0 / f } else { 1.0 })
        .collect();
    let world = NbiaWorld {
        engine,
        clock,
        drv: DriverState {
            async_transfers: cfg.async_transfers,
            cpu_inv_speed,
            net: Network::new(n_nodes, cfg.net.clone()),
            exec,
            rec: cfg.recorder.clone(),
            injector: FaultInjector::new(&cfg.faults),
        },
        workload: workload.clone(),
        membership: cfg.membership.clone(),
        gpu: cfg.gpu.clone(),
        finals_done: 0,
        finish: SimTime::ZERO,
    };

    let mut des = anthill_simkit::Engine::new(world);
    // Kick every worker thread's requester at t = 0 via empty data events
    // with an unknown request id (the engine treats them as pure kicks).
    for w in &workers {
        des.schedule(
            SimTime::ZERO,
            Ev::Data {
                wnode: w.node,
                thread: w.worker,
                req_id: u64::MAX,
                buffer: None,
            },
        );
    }
    for death in &cfg.faults.deaths {
        assert!(
            death.node < n_nodes && death.worker < slot_counts[death.node],
            "death spec ({}, {}) outside the cluster topology",
            death.node,
            death.worker
        );
        des.schedule(
            death.at,
            Ev::WorkerDeath {
                node: death.node,
                thread: death.worker,
            },
        );
    }
    let outcome = des.run_bounded(SimTime::MAX, 2_000_000_000);
    assert_eq!(
        outcome,
        anthill_simkit::RunOutcome::Drained,
        "simulation exceeded the event budget"
    );

    let world = des.into_world();
    assert_eq!(
        world.finals_done, workload.tiles,
        "every tile must be finally classified"
    );
    assert_eq!(world.engine.total_done(), workload.total_buffers());

    let makespan = world.finish.since(SimTime::ZERO);
    cfg.recorder
        .gauge_set("makespan_seconds", &[], makespan.as_secs_f64());
    cfg.recorder
        .counter_add("tiles_classified", &[], world.finals_done);
    let horizon = world.finish;
    let mut request_traces = Vec::new();
    let mut util_traces = Vec::new();
    let mut utilization = Vec::new();
    let mut stream_traces = Vec::new();
    let mut latency_hists = Vec::new();
    let mut service_hists = Vec::new();
    let exec_slots = world.drv.exec.iter().flat_map(|n| n.iter());
    for (stats, slot) in world.engine.worker_stats().zip(exec_slots) {
        utilization.push((stats.device, stats.util.utilization(horizon)));
        request_traces.push((stats.device, stats.req_trace.to_vec()));
        latency_hists.push((stats.device, stats.latency_hist.clone()));
        service_hists.push((stats.device, stats.service_hist.clone()));
        if cfg.trace_buckets > 0 && horizon > SimTime::ZERO {
            let bucket =
                SimDuration::from_nanos((horizon.as_nanos() / cfg.trace_buckets as u64).max(1));
            util_traces.push((stats.device, stats.util.trace(horizon, bucket)));
        }
        if let Some((_, ctl)) = &slot.gpu {
            stream_traces.push((stats.device, ctl.history().to_vec()));
        }
    }
    let tasks_by: HashMap<(DeviceKind, u8), u64> = world.engine.tasks_by().clone();

    SimReport {
        makespan,
        cpu_baseline: workload.cpu_baseline(),
        tasks_by,
        total_tasks: world.engine.total_done(),
        request_traces,
        util_traces,
        utilization,
        stream_traces,
        latency_hists,
        service_hists,
    }
}
