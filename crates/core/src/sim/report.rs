//! Measurements produced by a simulated cluster run.

use std::collections::HashMap;

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::{DurationHistogram, SimDuration, SimTime};

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last buffer finished.
    pub makespan: SimDuration,
    /// Single-CPU-core baseline for the same workload.
    pub cpu_baseline: SimDuration,
    /// Buffers processed, keyed by `(device kind, resolution level)`.
    pub tasks_by: HashMap<(DeviceKind, u8), u64>,
    /// Total buffers processed.
    pub total_tasks: u64,
    /// DQAA / static target-window traces per worker thread.
    pub request_traces: Vec<(DeviceId, Vec<(SimTime, usize)>)>,
    /// Device utilization traces (fraction busy per bucket).
    pub util_traces: Vec<(DeviceId, Vec<(SimTime, f64)>)>,
    /// Overall utilization per device over the whole run.
    pub utilization: Vec<(DeviceId, f64)>,
    /// GPU concurrent-event (stream) counts chosen by Algorithm 1, per GPU.
    pub stream_traces: Vec<(DeviceId, Vec<usize>)>,
    /// Request round-trip latency distribution per worker thread.
    pub latency_hists: Vec<(DeviceId, DurationHistogram)>,
    /// Per-buffer service-time distribution per worker thread.
    pub service_hists: Vec<(DeviceId, DurationHistogram)>,
}

impl SimReport {
    /// Speedup relative to the single-CPU-core baseline.
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.cpu_baseline.as_secs_f64() / self.makespan.as_secs_f64()
    }

    /// Buffers of resolution `level` processed by devices of `kind`.
    pub fn tasks(&self, kind: DeviceKind, level: u8) -> u64 {
        self.tasks_by.get(&(kind, level)).copied().unwrap_or(0)
    }

    /// Fraction (percent) of `level` buffers processed by `kind` devices.
    pub fn share_pct(&self, kind: DeviceKind, level: u8) -> f64 {
        let total: u64 = DeviceKind::ALL.iter().map(|&k| self.tasks(k, level)).sum();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.tasks(kind, level) as f64 / total as f64
    }

    /// Aggregate request-latency quantile across all threads of a kind.
    pub fn latency_quantile(&self, kind: DeviceKind, q: f64) -> SimDuration {
        let mut merged = DurationHistogram::new();
        for (dev, h) in &self.latency_hists {
            if dev.kind == kind {
                merged.merge(h);
            }
        }
        merged.quantile(q)
    }

    /// Aggregate service-time quantile across all threads of a kind.
    pub fn service_quantile(&self, kind: DeviceKind, q: f64) -> SimDuration {
        let mut merged = DurationHistogram::new();
        for (dev, h) in &self.service_hists {
            if dev.kind == kind {
                merged.merge(h);
            }
        }
        merged.quantile(q)
    }

    /// Mean utilization across devices of a kind.
    pub fn mean_utilization(&self, kind: DeviceKind) -> f64 {
        let xs: Vec<f64> = self
            .utilization
            .iter()
            .filter(|(d, _)| d.kind == kind)
            .map(|&(_, u)| u)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut tasks_by = HashMap::new();
        tasks_by.insert((DeviceKind::Cpu, 0), 80);
        tasks_by.insert((DeviceKind::Gpu, 0), 20);
        tasks_by.insert((DeviceKind::Gpu, 1), 10);
        SimReport {
            makespan: SimDuration::from_secs(10),
            cpu_baseline: SimDuration::from_secs(100),
            tasks_by,
            total_tasks: 110,
            request_traces: vec![],
            util_traces: vec![],
            utilization: vec![
                (
                    DeviceId {
                        node: 0,
                        kind: DeviceKind::Cpu,
                        index: 0,
                    },
                    0.5,
                ),
                (
                    DeviceId {
                        node: 0,
                        kind: DeviceKind::Gpu,
                        index: 0,
                    },
                    0.9,
                ),
            ],
            stream_traces: vec![],
            latency_hists: vec![],
            service_hists: vec![],
        }
    }

    #[test]
    fn speedup_and_shares() {
        let r = report();
        assert!((r.speedup() - 10.0).abs() < 1e-12);
        assert!((r.share_pct(DeviceKind::Cpu, 0) - 80.0).abs() < 1e-12);
        assert!((r.share_pct(DeviceKind::Gpu, 1) - 100.0).abs() < 1e-12);
        assert_eq!(r.share_pct(DeviceKind::Cpu, 7), 0.0);
    }

    #[test]
    fn mean_utilization_by_kind() {
        let r = report();
        assert!((r.mean_utilization(DeviceKind::Cpu) - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization(DeviceKind::Gpu) - 0.9).abs() < 1e-12);
    }
}
