//! The virtual-time graph executor: the DES counterpart of
//! [`crate::engine::sequential::run_graph`], driving a whole
//! [`DataflowGraph`] of replicated filters through the shared scheduling
//! engine in modeled time.
//!
//! Each filter of the graph is one engine node whose reader is scoped to
//! its own input queue, so *every edge* runs its own demand-driven stream:
//! an ODDS/DQAA/DBSA instance per (filter, edge), exactly as in the
//! paper's labeled-stream model. Messages between filters traverse the
//! modeled network (one logical placement per filter), tasks occupy
//! modeled devices, and completions feed the caller's handler, whose
//! emissions are routed over the graph's out-edges (round-robin, labeled,
//! or broadcast) or over a declared feedback edge.
//!
//! Faults and the asynchronous GPU transfer pipeline are the single-filter
//! runtime's department ([`crate::sim::runtime`]); this runner prices GPU
//! batches synchronously, which keeps cross-backend parity exact on
//! neutral workloads.

use std::collections::HashMap;

use anthill_hetsim::{DeviceId, DeviceKind, GpuEngines, GpuParams, NetParams, Network};
use anthill_simkit::{Scheduler, SimDuration, SimTime, World};

use crate::buffer::DataBuffer;
use crate::engine::core::{Executor, Transport, WorkerRef};
use crate::engine::sequential::GraphEmission;
use crate::engine::{Engine as SchedEngine, EngineConfig, VirtualClock};
use crate::faults::RecoveryConfig;
use crate::graph::{DataflowGraph, RoutingCursors};
use crate::obs::Recorder;
use crate::policy::Policy;
use crate::weights::WeightProvider;

/// Bytes of a data-request control message (as in the single-filter sim).
const REQUEST_BYTES: u64 = 64;
/// Bytes of a feedback/recirculation notification message.
const RECALC_BYTES: u64 = 128;

/// Configuration of one simulated graph run.
#[derive(Clone)]
pub struct GraphSimConfig {
    /// The stream scheduling policy (shared by every edge).
    pub policy: Policy,
    /// GPU timing parameters for GPU worker slots.
    pub gpu: GpuParams,
    /// Network timing parameters for the inter-filter links.
    pub net: NetParams,
    /// Upper bound on any worker's request window.
    pub max_request_window: usize,
    /// Observability sink; disabled by default.
    pub recorder: Recorder,
}

impl GraphSimConfig {
    /// Defaults matching the single-filter simulator.
    pub fn new(policy: Policy) -> GraphSimConfig {
        GraphSimConfig {
            policy,
            gpu: GpuParams::geforce_8800gt(),
            net: NetParams::gigabit_ethernet(),
            max_request_window: 256,
            recorder: Recorder::disabled(),
        }
    }
}

/// Measurements of one simulated graph run.
#[derive(Debug, Clone)]
pub struct GraphSimReport {
    /// Virtual time of the last buffer leaving the graph.
    pub makespan: SimDuration,
    /// Buffers that left the graph (no matching out-edge), in completion
    /// order.
    pub outputs: Vec<DataBuffer>,
    /// `(filter, device kind, level) -> completions`.
    pub assigned: HashMap<(usize, DeviceKind, u8), u64>,
    /// Buffers delivered over each graph edge.
    pub edge_delivered: HashMap<u32, u64>,
    /// Total completions across all filters.
    pub total: u64,
}

enum Ev {
    /// A data request arriving at a filter's reader.
    Request {
        reader: usize,
        wnode: usize,
        thread: usize,
        proctype: DeviceKind,
        req_id: u64,
    },
    /// A data (or empty) reply arriving at a worker.
    Data {
        wnode: usize,
        thread: usize,
        req_id: u64,
        buffer: Option<DataBuffer>,
    },
    /// A task finished on a device.
    TaskDone {
        node: usize,
        thread: usize,
        buffer: DataBuffer,
        proc_time: SimDuration,
    },
    /// A routed emission arriving at the destination filter of an edge.
    Deliver { edge: usize, buffer: DataBuffer },
    /// A self-recirculated buffer re-entering its own filter's queue.
    Feedback { filter: usize, buffer: DataBuffer },
    /// A per-request retry timer fired (no-op if the reply settled).
    Timeout {
        node: usize,
        thread: usize,
        req_id: u64,
    },
}

struct DriverState {
    net: Network,
    /// `[filter][worker]` GPU engines for GPU slots, `None` for CPUs.
    gpus: Vec<Vec<Option<GpuEngines>>>,
    rec: Recorder,
}

struct SimDriver<'a> {
    now: SimTime,
    drv: &'a mut DriverState,
    sched: &'a mut Scheduler<Ev>,
}

impl Transport for SimDriver<'_> {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        let arrival = self
            .drv
            .net
            .send(self.now, from.node, reader, REQUEST_BYTES);
        self.sched.at(
            arrival,
            Ev::Request {
                reader,
                wnode: from.node,
                thread: from.worker,
                proctype: from.device.kind,
                req_id,
            },
        );
    }

    fn schedule_timeout(&mut self, worker: WorkerRef, req_id: u64, fire_at: SimTime) {
        self.sched.at(
            fire_at,
            Ev::Timeout {
                node: worker.node,
                thread: worker.worker,
                req_id,
            },
        );
    }
}

impl Executor for SimDriver<'_> {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        let now = self.now;
        for buffer in batch {
            let (fin, dt) = match worker.device.kind {
                DeviceKind::Cpu => {
                    let dt = buffer.shape.cpu;
                    (now + dt, dt)
                }
                DeviceKind::Gpu => {
                    let gpu = self.drv.gpus[worker.node][worker.worker]
                        .as_mut()
                        .expect("GPU slot has engines");
                    let (_, fin) = gpu.run_sync(
                        now,
                        buffer.shape.bytes_in,
                        buffer.shape.gpu_kernel,
                        buffer.shape.bytes_out,
                    );
                    (fin, fin.since(now))
                }
            };
            self.sched.at(
                fin,
                Ev::TaskDone {
                    node: worker.node,
                    thread: worker.worker,
                    buffer,
                    proc_time: dt,
                },
            );
        }
    }
}

struct GraphWorld<F> {
    engine: SchedEngine<VirtualClock, Box<dyn WeightProvider>>,
    clock: VirtualClock,
    drv: DriverState,
    graph: DataflowGraph,
    cursors: RoutingCursors,
    handle: F,
    outputs: Vec<DataBuffer>,
    finish: SimTime,
}

impl<F> World for GraphWorld<F>
where
    F: FnMut(usize, DeviceKind, &DataBuffer) -> GraphEmission,
{
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        self.clock.set(now);
        match ev {
            Ev::Request {
                reader,
                wnode,
                thread,
                proctype,
                req_id,
            } => {
                let buffer = self.engine.answer_request(reader, proctype);
                let bytes = buffer
                    .as_ref()
                    .map(DataBuffer::wire_bytes)
                    .unwrap_or(REQUEST_BYTES);
                let arrival = self.drv.net.send(now, reader, wnode, bytes);
                sched.at(
                    arrival,
                    Ev::Data {
                        wnode,
                        thread,
                        req_id,
                        buffer,
                    },
                );
            }
            Ev::Data {
                wnode,
                thread,
                req_id,
                buffer,
            } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine
                    .data_arrived(wnode, thread, req_id, buffer, &mut d);
            }
            Ev::TaskDone {
                node,
                thread,
                buffer,
                proc_time,
            } => {
                self.engine.task_finished(node, thread, &buffer, proc_time);
                let kind = self.engine.worker_device(node, thread).kind;
                let em = (self.handle)(node, kind, &buffer);
                for b in em.feedback {
                    // Feedback goes over the filter's declared feedback
                    // edge when one exists; self-recirculation otherwise.
                    // Either way the hop is priced as a control message.
                    match self.graph.feedback_edge(node) {
                        Some(ei) => {
                            let to = self.graph.edge(ei).to;
                            let arrival = self.drv.net.send(now, node, to, RECALC_BYTES);
                            sched.at(
                                arrival,
                                Ev::Deliver {
                                    edge: ei,
                                    buffer: b,
                                },
                            );
                        }
                        None => {
                            let arrival = self.drv.net.send(now, node, node, RECALC_BYTES);
                            sched.at(
                                arrival,
                                Ev::Feedback {
                                    filter: node,
                                    buffer: b,
                                },
                            );
                        }
                    }
                }
                for b in em.forward {
                    let targets = self.graph.route_forward(node, b.level, &mut self.cursors);
                    match targets.split_last() {
                        None => {
                            // No matching out-edge: the buffer leaves the
                            // graph.
                            self.outputs.push(b);
                            if now > self.finish {
                                self.finish = now;
                            }
                        }
                        Some((&last, rest)) => {
                            for &ei in rest {
                                let to = self.graph.edge(ei).to;
                                let arrival = self.drv.net.send(now, node, to, b.wire_bytes());
                                sched.at(
                                    arrival,
                                    Ev::Deliver {
                                        edge: ei,
                                        buffer: b.clone(),
                                    },
                                );
                            }
                            let to = self.graph.edge(last).to;
                            let arrival = self.drv.net.send(now, node, to, b.wire_bytes());
                            sched.at(
                                arrival,
                                Ev::Deliver {
                                    edge: last,
                                    buffer: b,
                                },
                            );
                        }
                    }
                }
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.worker_idle(node, thread, &[proc_time], &mut d);
            }
            Ev::Deliver { edge, buffer } => {
                let to = self.graph.edge(edge).to;
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.deliver_edge(edge as u32, to, buffer, &mut d);
            }
            Ev::Feedback { filter, buffer } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.recirculate(filter, buffer, &mut d);
            }
            Ev::Timeout {
                node,
                thread,
                req_id,
            } => {
                let mut d = SimDriver {
                    now,
                    drv: &mut self.drv,
                    sched,
                };
                self.engine.request_timed_out(node, thread, req_id, &mut d);
            }
        }
    }
}

/// Run a dataflow graph in virtual time. `devices[f]` lists the worker
/// slots of filter `f` by device class; `seeds` are `(filter, buffer)`
/// pairs entering the named filters' input queues at t = 0; `handle` is
/// the filter logic, invoked once per completion with the hosting filter,
/// the executing device class, and the buffer, returning the emissions to
/// route.
pub fn run_graph_sim<F>(
    cfg: &GraphSimConfig,
    graph: &DataflowGraph,
    devices: &[Vec<DeviceKind>],
    seeds: Vec<(usize, DataBuffer)>,
    weights: Box<dyn WeightProvider>,
    handle: F,
) -> GraphSimReport
where
    F: FnMut(usize, DeviceKind, &DataBuffer) -> GraphEmission,
{
    assert_eq!(
        devices.len(),
        graph.n_filters(),
        "one device list per graph filter"
    );
    let clock = VirtualClock::new();
    let mut engine = SchedEngine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_request_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );

    let mut gpus: Vec<Vec<Option<GpuEngines>>> = Vec::with_capacity(devices.len());
    for (f, kinds) in devices.iter().enumerate() {
        let node = engine.add_node();
        debug_assert_eq!(node, f);
        assert!(!kinds.is_empty(), "filter {f} has no worker slots");
        let mut slots = Vec::with_capacity(kinds.len());
        let mut index: HashMap<DeviceKind, usize> = HashMap::new();
        for &kind in kinds {
            let slot = index.entry(kind).or_insert(0);
            engine.add_worker(
                node,
                DeviceId {
                    node: f,
                    kind,
                    index: *slot,
                },
            );
            *slot += 1;
            slots.push(match kind {
                DeviceKind::Cpu => None,
                DeviceKind::Gpu => Some(GpuEngines::new(cfg.gpu.clone())),
            });
        }
        gpus.push(slots);
    }
    for f in 0..graph.n_filters() {
        // Per-filter reader scope: workers of filter f request only from
        // their own filter's input queue, giving every edge its own
        // demand-driven stream instance.
        engine.set_reader_scope(f, vec![f]);
    }
    for (f, b) in seeds {
        engine.seed_reader(f, b);
    }
    let workers = engine.worker_refs();

    let world = GraphWorld {
        engine,
        clock,
        drv: DriverState {
            net: Network::new(graph.n_filters(), cfg.net.clone()),
            gpus,
            rec: cfg.recorder.clone(),
        },
        graph: graph.clone(),
        cursors: RoutingCursors::new(graph),
        handle,
        outputs: Vec::new(),
        finish: SimTime::ZERO,
    };

    let mut des = anthill_simkit::Engine::new(world);
    for w in &workers {
        des.schedule(
            SimTime::ZERO,
            Ev::Data {
                wnode: w.node,
                thread: w.worker,
                req_id: u64::MAX,
                buffer: None,
            },
        );
    }
    let outcome = des.run_bounded(SimTime::MAX, 2_000_000_000);
    assert_eq!(
        outcome,
        anthill_simkit::RunOutcome::Drained,
        "graph simulation exceeded the event budget"
    );

    let world = des.into_world();
    let assigned = world.engine.tasks_by_node().clone();
    let edge_delivered = world.engine.edge_delivered().clone();
    let total = world.engine.total_done();
    world.drv.rec.gauge_set(
        "makespan_seconds",
        &[],
        world.finish.since(SimTime::ZERO).as_secs_f64(),
    );
    GraphSimReport {
        makespan: world.finish.since(SimTime::ZERO),
        outputs: world.outputs,
        assigned,
        edge_delivered,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::graph::{EdgeSpec, FilterSpec};
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::TaskShape;

    fn tile(id: u64, micros: u64) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_micros(micros),
                gpu_kernel: SimDuration::from_micros(micros),
                bytes_in: 0,
                bytes_out: 0,
            },
            level: 0,
            task: id,
        }
    }

    fn weights() -> Box<dyn WeightProvider> {
        Box::new(OracleWeights::new(GpuParams::geforce_8800gt(), false))
    }

    fn forward_all(_f: usize, _k: DeviceKind, b: &DataBuffer) -> GraphEmission {
        GraphEmission {
            forward: vec![b.clone()],
            feedback: Vec::new(),
        }
    }

    #[test]
    fn pipeline_processes_every_buffer_at_every_stage() {
        let graph = DataflowGraph::pipeline(&["reader", "feature", "classifier"]);
        let devices = vec![
            vec![DeviceKind::Cpu],
            vec![DeviceKind::Cpu, DeviceKind::Gpu],
            vec![DeviceKind::Cpu],
        ];
        let seeds = (0..30).map(|i| (0, tile(i, 400))).collect();
        let r = run_graph_sim(
            &GraphSimConfig::new(Policy::ddfcfs(4)),
            &graph,
            &devices,
            seeds,
            weights(),
            forward_all,
        );
        assert_eq!(r.total, 90, "30 buffers x 3 filters");
        assert_eq!(r.outputs.len(), 30);
        assert_eq!(r.edge_delivered.get(&0), Some(&30));
        assert_eq!(r.edge_delivered.get(&1), Some(&30));
        assert!(r.makespan > SimDuration::ZERO);
    }

    #[test]
    fn diamond_splits_round_robin_and_conserves() {
        let graph = DataflowGraph::diamond("src", "left", "right", "sink");
        let devices = vec![vec![DeviceKind::Cpu]; 4];
        let seeds = (0..40).map(|i| (0, tile(i, 200))).collect();
        let r = run_graph_sim(
            &GraphSimConfig::new(Policy::odds()),
            &graph,
            &devices,
            seeds,
            weights(),
            forward_all,
        );
        assert_eq!(r.total, 120, "src + one branch + sink per buffer");
        assert_eq!(r.outputs.len(), 40);
        for edge in 0..4u32 {
            assert_eq!(r.edge_delivered.get(&edge), Some(&20), "edge {edge}");
        }
    }

    #[test]
    fn broadcast_duplicates_buffers_across_edges() {
        let graph = DataflowGraph::new(
            vec![
                FilterSpec::new("src"),
                FilterSpec::new("a"),
                FilterSpec::new("b"),
            ],
            vec![EdgeSpec::broadcast(0, 1), EdgeSpec::broadcast(0, 2)],
        )
        .expect("valid broadcast graph");
        let devices = vec![vec![DeviceKind::Cpu]; 3];
        let seeds = (0..10).map(|i| (0, tile(i, 100))).collect();
        let r = run_graph_sim(
            &GraphSimConfig::new(Policy::ddfcfs(2)),
            &graph,
            &devices,
            seeds,
            weights(),
            forward_all,
        );
        assert_eq!(r.total, 30, "each buffer runs on src and both sinks");
        assert_eq!(r.outputs.len(), 20);
        assert_eq!(r.edge_delivered.get(&0), Some(&10));
        assert_eq!(r.edge_delivered.get(&1), Some(&10));
    }

    #[test]
    fn feedback_edge_recirculates_upstream() {
        // a -> b forward; b -> a declared feedback. Level-0 buffers bounce
        // once: b sends them back at level 1 with a fresh id, a forwards
        // them again, b emits them.
        let graph = DataflowGraph::new(
            vec![FilterSpec::new("a"), FilterSpec::new("b")],
            vec![EdgeSpec::round_robin(0, 1), EdgeSpec::feedback(1, 0)],
        )
        .expect("valid feedback graph");
        let devices = vec![vec![DeviceKind::Cpu]; 2];
        let seeds = (0..16).map(|i| (0, tile(i, 100))).collect();
        let r = run_graph_sim(
            &GraphSimConfig::new(Policy::ddfcfs(2)),
            &graph,
            &devices,
            seeds,
            weights(),
            |f, _k, b| {
                let mut em = GraphEmission::default();
                if f == 1 && b.level == 0 {
                    let mut high = b.clone();
                    high.level = 1;
                    high.id = BufferId(b.id.0 + 1_000_000);
                    em.feedback.push(high);
                } else {
                    em.forward.push(b.clone());
                }
                em
            },
        );
        assert_eq!(r.total, 64, "two full round trips per buffer");
        assert_eq!(r.outputs.len(), 16);
        assert!(r.outputs.iter().all(|b| b.level == 1));
        assert_eq!(r.edge_delivered.get(&0), Some(&32));
        assert_eq!(r.edge_delivered.get(&1), Some(&16));
    }

    #[test]
    fn graph_runs_are_deterministic() {
        let graph = DataflowGraph::diamond("src", "left", "right", "sink");
        let devices = vec![vec![DeviceKind::Cpu, DeviceKind::Gpu]; 4];
        let mk = || {
            let seeds = (0..24).map(|i| (0, tile(i, 300))).collect();
            run_graph_sim(
                &GraphSimConfig::new(Policy::ddwrr(8)),
                &graph,
                &devices,
                seeds,
                weights(),
                forward_all,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.edge_delivered, b.edge_delivered);
        let ids_a: Vec<u64> = a.outputs.iter().map(|o| o.id.0).collect();
        let ids_b: Vec<u64> = b.outputs.iter().map(|o| o.id.0).collect();
        assert_eq!(ids_a, ids_b);
    }
}
