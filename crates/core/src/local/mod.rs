//! The native intra-node runtime: real worker threads, shared event
//! queues, and the demand-driven scheduling policies, executing actual
//! computation.
//!
//! This is the threaded counterpart of the virtual-time executor in
//! [`crate::sim`]: another driver of the shared scheduling engine. All
//! policy decisions — queue ordering, per-device weights — come from
//! [`crate::engine::select`]; this module only owns the native execution
//! machinery (OS threads, condvars, backpressure). It demonstrates the
//! filter-stream programming model end to end — filters with per-device
//! handlers, transparent replication as worker threads, recirculation for
//! multi-resolution loops — on hardware that exists everywhere (CPU
//! cores), with accelerator speed differences optionally *emulated* by
//! calibrated busy-waits (see [`ExecMode`]).
//!
//! For bit-reproducible runs (the cross-backend parity tests), use
//! [`Pipeline::run_deterministic`]: the same filters executed by the
//! engine's sequential reference driver instead of free-running threads.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::buffer::DataBuffer;
use crate::engine::admission::{AdmissionConfig, AdmissionController, AdmissionCounters, Offer};
use crate::engine::select::{self, ReadyLane};
use crate::engine::sequential::{self, GraphEmission, SequentialConfig};
use crate::graph::{DataflowGraph, RoutingCursors};
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::{Policy, PolicyKind};
use crate::weights::WeightProvider;
use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::SimRng;

/// A work item in the local runtime: scheduling metadata plus an opaque
/// application payload.
pub struct LocalTask {
    /// Scheduling metadata (parameters, cost shape, level).
    pub buffer: DataBuffer,
    /// Application payload, downcast by the filter.
    pub payload: Box<dyn Any + Send>,
}

impl LocalTask {
    /// Build a task from metadata and any sendable payload.
    pub fn new(buffer: DataBuffer, payload: impl Any + Send) -> LocalTask {
        LocalTask {
            buffer,
            payload: Box::new(payload),
        }
    }
}

/// Where a handler sends a produced task.
pub struct Emitter<'a> {
    forward: &'a mut Vec<LocalTask>,
    back: &'a mut Vec<LocalTask>,
}

impl Emitter<'_> {
    /// Send a task downstream (to the next filter, or the run output if
    /// this is the last filter).
    pub fn forward(&mut self, task: LocalTask) {
        self.forward.push(task);
    }

    /// Recirculate a task into this filter's own input queue (the
    /// multi-resolution reprocessing loop of NBIA's Figure 1).
    pub fn recirculate(&mut self, task: LocalTask) {
        self.back.push(task);
    }
}

/// A filter: per-device event handlers invoked by the runtime. Handlers
/// run concurrently on multiple worker threads, so filters hold only
/// shared state.
pub trait LocalFilter: Send + Sync + 'static {
    /// Handle one event on a device of the given kind.
    fn handle(&self, device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>);
}

/// How a worker executes tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Run the handler; its real duration is the task's cost.
    Native,
    /// Busy-wait the task's modeled device time scaled by the factor, then
    /// run the handler. Lets a CPU thread stand in for a faster or slower
    /// device while still computing real results.
    Emulated {
        /// Multiplier applied to the modeled time (use ≤1e-3 in tests).
        scale: f64,
    },
}

/// One worker slot of a stage: a device identity plus its execution mode.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSpec {
    /// The device class this thread represents.
    pub kind: DeviceKind,
    /// Execution mode.
    pub mode: ExecMode,
}

/// One scheduled worker-thread death in the threaded runtime. Virtual
/// time does not exist here, so the trigger is a task count: the worker
/// retires after handling `after` tasks, re-enqueueing whatever it had
/// just popped (the local analogue of [`crate::faults::WorkerDeathSpec`]).
#[derive(Debug, Clone, Copy)]
pub struct LocalDeathSpec {
    /// Pipeline stage index.
    pub stage: usize,
    /// Device class of the targeted worker slot.
    pub kind: DeviceKind,
    /// Index among same-kind workers of the stage.
    pub index: usize,
    /// Tasks the worker handles before dying.
    pub after: u64,
}

/// Fault schedule for the threaded runtime (see [`crate::faults`] for the
/// DES counterpart). Thread interleaving is nondeterministic, so unlike
/// the simulator only the *rates* are reproducible, not the exact fault
/// placement; the chaos tests assert conservation, not timing.
#[derive(Debug, Clone)]
pub struct LocalFaults {
    /// Seed of the per-worker failure RNG streams.
    pub seed: u64,
    /// Probability that a popped task's attempt is discarded and the task
    /// re-enqueued. Must be `< 1.0` or the run cannot terminate.
    pub task_fail: f64,
    /// Scheduled worker-thread deaths. Every stage must keep at least one
    /// surviving worker (validated at run start).
    pub deaths: Vec<LocalDeathSpec>,
}

impl LocalFaults {
    /// A transient-failure-only schedule.
    pub fn task_fail(seed: u64, p: f64) -> LocalFaults {
        LocalFaults {
            seed,
            task_fail: p,
            deaths: Vec::new(),
        }
    }
}

/// Contention profile of the shared dispatch state in
/// [`Pipeline::run_traced`] (see `DESIGN.md` §10 for the lock map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotPath {
    /// The pre-overhaul layout: one global payload/attempt table and one
    /// global counter map, each bumped under its lock once per task, plus
    /// a per-task metrics increment. Kept as the measured baseline of
    /// `repro perf`.
    Coarse,
    /// Sharded payload/attempt tables (consecutive buffer ids land on
    /// different locks) and per-worker completion tallies merged into the
    /// report once at join. The default.
    Sharded,
}

/// One lock's worth of task-side state: parked payloads plus per-buffer
/// failure counts (both keyed by buffer id, so they share a shard).
#[derive(Default)]
struct DispatchShard {
    payloads: HashMap<u64, Box<dyn Any + Send>>,
    attempts: HashMap<u64, u32>,
}

/// The payload/attempt side table, split over independently locked shards
/// so concurrent workers touching different buffers never contend.
/// [`HotPath::Coarse`] uses a single shard — the legacy global table.
struct DispatchState {
    shards: Vec<Mutex<DispatchShard>>,
}

impl DispatchState {
    /// Shard count for [`HotPath::Sharded`]: comfortably above any worker
    /// count the runtime spawns, and a power of two so the (sequential)
    /// buffer ids spread evenly.
    const SHARDS: usize = 32;

    fn new(hot_path: HotPath) -> DispatchState {
        let n = match hot_path {
            HotPath::Coarse => 1,
            HotPath::Sharded => Self::SHARDS,
        };
        DispatchState {
            shards: (0..n)
                .map(|_| Mutex::new(DispatchShard::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, id: u64) -> &Mutex<DispatchShard> {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Park a payload while its buffer sits in a stage queue.
    fn park(&self, id: u64, payload: Box<dyn Any + Send>) {
        self.shard(id).lock().payloads.insert(id, payload);
    }

    /// Claim the payload of a dispatched buffer.
    fn claim(&self, id: u64) -> Box<dyn Any + Send> {
        self.shard(id)
            .lock()
            .payloads
            .remove(&id)
            .expect("payload parked for queued buffer")
    }

    /// Bump and return the buffer's transient-failure count.
    fn bump_attempt(&self, id: u64) -> u32 {
        let mut s = self.shard(id).lock();
        let e = s.attempts.entry(id).or_insert(0);
        *e += 1;
        *e
    }
}

struct StageQueue {
    /// Policy-ordered lane from the engine: the pop-order decision lives
    /// in [`crate::engine::select`], not here. The critical section around
    /// it is push/pop only — trace emission, weight computation and
    /// payload parking all happen outside this lock.
    queue: Mutex<ReadyLane>,
    cv: Condvar,
    /// Signalled when the queue drops below capacity (backpressure).
    space: Condvar,
    /// Cached [`ReadyLane::needs_weights`]: FIFO lanes let producers skip
    /// the per-push weight computation entirely.
    needs_weights: bool,
}

impl StageQueue {
    fn new(lane: ReadyLane) -> StageQueue {
        StageQueue {
            needs_weights: lane.needs_weights(),
            queue: Mutex::new(lane),
            cv: Condvar::new(),
            space: Condvar::new(),
        }
    }
}

/// Per-stage, per-device execution counters.
#[derive(Debug, Clone, Default)]
pub struct LocalReport {
    /// `(stage, device kind, level) -> tasks handled`.
    pub handled: HashMap<(usize, DeviceKind, u8), u64>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Task attempts discarded by the fault schedule (each re-enqueued).
    pub retries: u64,
    /// Worker threads retired by the fault schedule.
    pub deaths: u64,
    /// Buffers delivered over each dataflow-graph edge (`edge id ->
    /// count`, every edge present). Empty for implicit linear chains run
    /// without [`Pipeline::with_graph`].
    pub edge_delivered: HashMap<u32, u64>,
}

impl LocalReport {
    /// Tasks of `level` handled by `kind` workers on `stage`.
    pub fn count(&self, stage: usize, kind: DeviceKind, level: u8) -> u64 {
        self.handled
            .get(&(stage, kind, level))
            .copied()
            .unwrap_or(0)
    }

    /// Total tasks handled across all stages and devices.
    pub fn total(&self) -> u64 {
        self.handled.values().sum()
    }
}

/// Configuration of an open-loop [`Pipeline::run_load`] run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Bounded intake in front of stage 0 (inflight cap, queue cap,
    /// overload policy).
    pub admission: AdmissionConfig,
    /// Queue-depth sampling cadence (clamped to at least 200 µs).
    pub sample_every: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            admission: AdmissionConfig::default(),
            sample_every: Duration::from_millis(5),
        }
    }
}

/// One point of the queue-depth time series sampled by the load injector.
#[derive(Debug, Clone)]
pub struct QueueDepthSample {
    /// Monotonic time since run start, nanoseconds.
    pub t_ns: u64,
    /// Buffers across every stage's ready lane (the aggregate of
    /// `per_stage`).
    pub ready: u64,
    /// Tasks waiting at the admission intake.
    pub intake: u64,
    /// Admitted-but-unfinished tasks.
    pub inflight: u64,
    /// Ready-lane depth of each stage (filter), indexed by stage id. The
    /// aggregate alone cannot show which filter of a DAG is backing up.
    pub per_stage: Vec<u64>,
}

/// Outcome of an open-loop [`Pipeline::run_load`] run.
#[derive(Debug)]
pub struct LoadRunReport {
    /// Terminal admission classifications (conservation:
    /// `admitted + shed + deadline_dropped == generated`).
    pub admission: AdmissionCounters,
    /// Terminal outputs observed (`on_complete` invocations).
    pub completed: u64,
    /// The per-stage execution report, as in closed-loop runs.
    pub local: LocalReport,
    /// Queue-depth time series, in sample order.
    pub queue_depth: Vec<QueueDepthSample>,
}

/// Shared state of one open-loop run, threaded through the worker loop.
struct LoadSpec<'a> {
    /// Arrival offsets from run start, nanoseconds, non-decreasing.
    arrivals: &'a [u64],
    /// Builds the i-th task; receives `(index, arrival_ns)`.
    make_task: &'a (dyn Fn(u64, u64) -> LocalTask + Sync),
    admission: &'a Mutex<AdmissionController<LocalTask>>,
    /// Signalled after every completion so a blocked injector re-offers.
    space: &'a Condvar,
    /// Invoked per terminal output with `(task, started_ns, finished_ns)`.
    on_complete: &'a (dyn Fn(LocalTask, u64, u64) + Sync),
    sample_every: Duration,
    samples: &'a Mutex<Vec<QueueDepthSample>>,
}

struct Stage {
    filter: Arc<dyn LocalFilter>,
    workers: Vec<WorkerSpec>,
}

/// A dataflow of filters with optional recirculation, executed by real
/// threads under a chosen scheduling policy. Stages chain linearly by
/// default; [`with_graph`](Pipeline::with_graph) routes emissions through
/// an explicit [`DataflowGraph`] instead (fan-out, fan-in, labeled
/// streams, feedback edges).
pub struct Pipeline {
    stages: Vec<Stage>,
    graph: Option<DataflowGraph>,
    policy: PolicyKind,
    capacity: Option<usize>,
    request_window: usize,
    faults: Option<LocalFaults>,
    hot_path: HotPath,
    bind_cores: bool,
}

impl Pipeline {
    /// An empty pipeline under the given receiver-side policy (DDFCFS pops
    /// FIFO; DDWRR/ODDS pop best-per-device).
    pub fn new(policy: PolicyKind) -> Pipeline {
        Pipeline {
            stages: Vec::new(),
            graph: None,
            policy,
            capacity: None,
            request_window: 4,
            faults: None,
            hot_path: HotPath::Sharded,
            bind_cores: false,
        }
    }

    /// Route emissions through an explicit dataflow graph instead of the
    /// implicit linear chain: stage `i` hosts filter `i` of the graph, a
    /// handler's `forward` output travels over the filter's matching
    /// out-edge (round-robin or labeled, see
    /// [`route_forward`](DataflowGraph::route_forward)), and
    /// `recirculate` uses the filter's declared feedback edge when one
    /// exists (self-recirculation otherwise). Forward emissions with no
    /// matching out-edge leave the run as outputs. Sources are still
    /// seeded into stage 0.
    ///
    /// Broadcast edges are rejected here: the native runtime moves opaque
    /// `Box<dyn Any>` payloads, which cannot be duplicated — broadcast
    /// topologies run on the buffer-level backends (sequential reference,
    /// DES, net), which clone [`DataBuffer`]s.
    pub fn with_graph(mut self, graph: DataflowGraph) -> Pipeline {
        assert!(
            !graph.has_broadcast(),
            "broadcast edges need clonable payloads; the native runtime \
             moves Box<dyn Any> and cannot duplicate them"
        );
        self.graph = Some(graph);
        self
    }

    /// Select the contention profile of the shared dispatch state used by
    /// [`run`](Pipeline::run) / [`run_traced`](Pipeline::run_traced).
    /// Defaults to [`HotPath::Sharded`]; [`HotPath::Coarse`] reinstates
    /// the pre-overhaul global locks so `repro perf` can A/B them.
    /// Scheduling behaviour is identical either way — only lock layout and
    /// tally aggregation differ.
    pub fn with_hot_path(mut self, hot_path: HotPath) -> Pipeline {
        self.hot_path = hot_path;
        self
    }

    /// Pin each worker thread to a core, round-robin in spawn order
    /// (stage-major, configuration order within a stage), via
    /// [`anthill_poller::bind_to_core`]. A no-op on platforms without
    /// thread affinity — workers run unpinned and the run is otherwise
    /// identical. Scheduling behaviour never depends on this flag; it
    /// only steadies benchmark numbers by stopping the OS from migrating
    /// hot workers between cores mid-run.
    pub fn with_bind_cores(mut self, bind_cores: bool) -> Pipeline {
        self.bind_cores = bind_cores;
        self
    }

    /// Inject faults into [`run`](Pipeline::run) /
    /// [`run_traced`](Pipeline::run_traced): transient attempt failures
    /// (task re-enqueued, completion counted only on success) and
    /// count-triggered worker deaths (thread retires, its popped task is
    /// re-enqueued for the survivors). Ignored by
    /// [`run_deterministic`](Pipeline::run_deterministic), which models no
    /// execution machinery to fail.
    pub fn with_faults(mut self, faults: LocalFaults) -> Pipeline {
        self.faults = Some(faults);
        self
    }

    /// Per-worker request window (`streamRequestSize`) used by
    /// [`run_deterministic`](Pipeline::run_deterministic); ODDS adapts from
    /// it via DQAA. Defaults to 4.
    pub fn with_request_window(mut self, window: usize) -> Pipeline {
        self.request_window = window.max(1);
        self
    }

    /// Bound every stage queue to `capacity` buffers: a producer thread
    /// blocks in `forward` until the downstream queue has space — the
    /// demand-driven behaviour of the paper's streams, where consumers
    /// pull only as much as their request window admits. Source injection
    /// and recirculation bypass the bound (a worker must never block on
    /// its own stage's queue).
    pub fn with_capacity(mut self, capacity: usize) -> Pipeline {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Append a filter stage with its worker slots. Returns the stage id.
    pub fn add_stage(&mut self, filter: Arc<dyn LocalFilter>, workers: Vec<WorkerSpec>) -> usize {
        assert!(!workers.is_empty(), "a stage needs at least one worker");
        self.stages.push(Stage { filter, workers });
        self.stages.len() - 1
    }

    /// Run the pipeline to completion on the given source tasks; returns
    /// the tasks emitted by the final stage and the execution report.
    ///
    /// Termination: the runtime counts in-flight tasks (queued plus being
    /// handled); when the count reaches zero every queue is closed and the
    /// workers join.
    pub fn run<W: WeightProvider + Sync>(
        &self,
        sources: Vec<LocalTask>,
        weights: &W,
    ) -> (Vec<LocalTask>, LocalReport) {
        self.run_traced(sources, weights, &Recorder::disabled())
    }

    /// [`run`](Pipeline::run) with observability: stage-queue insertions
    /// record [`EventKind::Enqueue`] and each worker thread records
    /// dispatch / start / finish, stamped with monotonic wall time since
    /// run start. `DeviceRef::node` carries the stage index (the local
    /// runtime is intra-node).
    pub fn run_traced<W: WeightProvider + Sync>(
        &self,
        sources: Vec<LocalTask>,
        weights: &W,
        recorder: &Recorder,
    ) -> (Vec<LocalTask>, LocalReport) {
        self.run_inner(sources, None, weights, recorder)
    }

    /// Drive the pipeline *open-loop*: an injector thread offers one task
    /// per entry of `arrivals` (nanosecond offsets from run start,
    /// non-decreasing) to a bounded admission intake in front of stage 0,
    /// instead of seeding a fixed batch. Admitted tasks flow through the
    /// pipeline as usual; overload behavior follows
    /// [`LoadConfig::admission`] — block the generator, shed the oldest
    /// waiting task, or drop tasks that overstay a deadline — with every
    /// classification traced (`task_admitted` / `task_shed` /
    /// `task_deadline_dropped`) and counted.
    ///
    /// `make_task` builds the i-th task from `(index, arrival_ns)`; embed
    /// the arrival in the payload to measure end-to-end latency.
    /// `on_complete` runs on the worker thread for every terminal output
    /// with `(task, started_ns, finished_ns)` — record latencies there
    /// instead of collecting outputs (nothing is buffered).
    ///
    /// Requires filters that eventually forward exactly one terminal
    /// output per admitted task (each terminal output releases one
    /// admission slot). The injector also samples a queue-depth time
    /// series every [`LoadConfig::sample_every`].
    pub fn run_load<W: WeightProvider + Sync>(
        &self,
        arrivals: &[u64],
        make_task: &(dyn Fn(u64, u64) -> LocalTask + Sync),
        cfg: LoadConfig,
        weights: &W,
        recorder: &Recorder,
        on_complete: &(dyn Fn(LocalTask, u64, u64) + Sync),
    ) -> LoadRunReport {
        let admission = Mutex::new(AdmissionController::new(
            cfg.admission,
            recorder.clone(),
            DeviceRef::node_scope(0),
        ));
        let space = Condvar::new();
        let samples = Mutex::new(Vec::new());
        let completed = AtomicU64::new(0);
        let counted = |t: LocalTask, started_ns: u64, finished_ns: u64| {
            completed.fetch_add(1, Ordering::SeqCst);
            on_complete(t, started_ns, finished_ns);
        };
        let spec = LoadSpec {
            arrivals,
            make_task,
            admission: &admission,
            space: &space,
            on_complete: &counted,
            sample_every: cfg.sample_every.max(Duration::from_micros(200)),
            samples: &samples,
        };
        let (_outputs, local) = self.run_inner(Vec::new(), Some(&spec), weights, recorder);
        LoadRunReport {
            admission: admission.into_inner().counters(),
            completed: completed.load(Ordering::SeqCst),
            local,
            queue_depth: samples.into_inner(),
        }
    }

    fn run_inner<W: WeightProvider + Sync>(
        &self,
        sources: Vec<LocalTask>,
        load: Option<&LoadSpec<'_>>,
        weights: &W,
        recorder: &Recorder,
    ) -> (Vec<LocalTask>, LocalReport) {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        if let Some(g) = &self.graph {
            assert_eq!(
                g.n_filters(),
                self.stages.len(),
                "graph filters must match pipeline stages one to one"
            );
        }
        if let Some(f) = &self.faults {
            assert!(
                (0.0..1.0).contains(&f.task_fail),
                "task_fail probability must be in [0, 1) or the run cannot terminate"
            );
            for d in &f.deaths {
                let stage = self.stages.get(d.stage).expect("death spec names a stage");
                let slots = stage.workers.iter().filter(|w| w.kind == d.kind).count();
                assert!(
                    d.index < slots,
                    "death spec ({}, {:?}, {}) names no worker slot",
                    d.stage,
                    d.kind,
                    d.index
                );
            }
            for (si, stage) in self.stages.iter().enumerate() {
                let dying = f.deaths.iter().filter(|d| d.stage == si).count();
                assert!(
                    dying < stage.workers.len(),
                    "stage {si} would lose every worker; keep an alive floor of one"
                );
            }
        }
        let started = Instant::now();
        let n_stages = self.stages.len();
        let hot_path = self.hot_path;
        // Coarse keeps the pre-overhaul full SharedQueue lane; Sharded lets
        // each stage pick the cheapest lane layout that preserves the
        // policy's pop order for that stage's worker kinds.
        let queues: Vec<StageQueue> = self
            .stages
            .iter()
            .map(|stage| {
                let lane = match hot_path {
                    HotPath::Coarse => ReadyLane::new(self.policy),
                    HotPath::Sharded => {
                        let kinds: Vec<DeviceKind> = stage.workers.iter().map(|w| w.kind).collect();
                        ReadyLane::tuned(self.policy, &kinds)
                    }
                };
                StageQueue::new(lane)
            })
            .collect();
        let in_flight = AtomicUsize::new(0);
        let done = AtomicUsizeFlag::new();
        let (out_tx, out_rx): (Sender<LocalTask>, Receiver<LocalTask>) = unbounded();
        type Counters = HashMap<(usize, DeviceKind, u8), u64>;
        let counters: Mutex<Counters> = Mutex::new(HashMap::new());
        let retries = AtomicUsize::new(0);
        let deaths = AtomicUsize::new(0);

        // Payload storage: SharedQueue holds only metadata, so payloads are
        // parked in a side table keyed by buffer id (sharded or global per
        // the hot-path knob), together with per-buffer failure counts (the
        // `attempt` field of `TaskRetried`).
        let dispatch = DispatchState::new(hot_path);

        // Graph routing state: each filter's round-robin out-edge cursor
        // (one short lock per forwarded task) and one delivery counter per
        // edge for the conservation report.
        let graph = self.graph.as_ref();
        let cursors = graph.map(|g| Mutex::new(RoutingCursors::new(g)));
        let edge_counts: Vec<AtomicU64> = (0..graph.map_or(0, |g| g.edges().len()))
            .map(|_| AtomicU64::new(0))
            .collect();

        let capacity = self.capacity;
        // Per-push weight vector: skipped entirely for FIFO lanes; computed
        // with one prediction per device class on the optimized hot path,
        // or with the legacy one-call-per-weight shape under Coarse (the
        // faithful pre-overhaul baseline).
        let lane_weights = |sq: &StageQueue, buf: &crate::buffer::DataBuffer| -> [f64; 2] {
            if !sq.needs_weights {
                return [0.0; 2];
            }
            match hot_path {
                HotPath::Coarse => select::weights_for(weights, buf),
                HotPath::Sharded => weights.weights_pair(buf),
            }
        };
        let enqueue = |stage: usize, task: LocalTask, queues: &[StageQueue], bounded: bool| {
            // Everything except the push itself stays outside the queue
            // lock: weight computation, payload parking, trace emission.
            let sq = &queues[stage];
            let w = lane_weights(sq, &task.buffer);
            let id = task.buffer.id.0;
            let level = task.buffer.level;
            dispatch.park(id, task.payload);
            recorder.record_now(
                started,
                DeviceRef::node_scope(stage),
                EventKind::Enqueue { buffer: id, level },
            );
            let mut q = sq.queue.lock();
            if bounded {
                if let Some(cap) = capacity {
                    while q.len() >= cap && !done.is_set() {
                        sq.space.wait(&mut q);
                    }
                }
            }
            q.push(task.buffer, w, None);
            drop(q);
            sq.cv.notify_one();
        };

        // An open-loop run starts with one in-flight token held by the
        // injector thread, so the count cannot hit zero between arrivals.
        in_flight.store(
            sources.len() + usize::from(load.is_some()),
            Ordering::SeqCst,
        );
        for t in sources {
            enqueue(0, t, &queues, false);
        }
        if in_flight.load(Ordering::SeqCst) == 0 {
            return (
                Vec::new(),
                LocalReport {
                    handled: HashMap::new(),
                    elapsed: started.elapsed(),
                    retries: 0,
                    deaths: 0,
                    edge_delivered: edge_counts
                        .iter()
                        .enumerate()
                        .map(|(ei, _)| (ei as u32, 0))
                        .collect(),
                },
            );
        }

        std::thread::scope(|scope| {
            if let Some(load) = load {
                let queues = &queues;
                let in_flight = &in_flight;
                let done = &done;
                let enqueue_ref = &enqueue;
                scope.spawn(move || {
                    let sample_every = load.sample_every;
                    let mut next_sample = Duration::ZERO;
                    // Depth snapshot: each lock is taken and dropped on its
                    // own (never nested), so this cannot deadlock against
                    // workers holding admission-then-queue.
                    let sample_now = |now: Duration| {
                        let mut per_stage = Vec::with_capacity(queues.len());
                        let mut ready = 0u64;
                        for sq in queues.iter() {
                            let depth = sq.queue.lock().len() as u64;
                            ready += depth;
                            per_stage.push(depth);
                        }
                        let (intake, inflight) = {
                            let c = load.admission.lock();
                            (c.queued() as u64, c.inflight() as u64)
                        };
                        load.samples.lock().push(QueueDepthSample {
                            t_ns: now.as_nanos() as u64,
                            ready,
                            intake,
                            inflight,
                            per_stage,
                        });
                    };
                    'arrivals: for (i, &offset) in load.arrivals.iter().enumerate() {
                        let target = Duration::from_nanos(offset);
                        loop {
                            if done.is_set() {
                                break 'arrivals;
                            }
                            let now = started.elapsed();
                            if now >= next_sample {
                                sample_now(now);
                                next_sample = now + sample_every;
                            }
                            if now >= target {
                                break;
                            }
                            // Sleep in sampling-cadence slices; the last
                            // stretch is finished by yielding so arrivals
                            // land close to their schedule.
                            let remaining = target - now;
                            if remaining > Duration::from_micros(300) {
                                std::thread::sleep(
                                    (remaining - Duration::from_micros(150)).min(sample_every),
                                );
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        let mut task = (load.make_task)(i as u64, offset);
                        let mut ctl = load.admission.lock();
                        loop {
                            let now_ns = started.elapsed().as_nanos() as u64;
                            let id = task.buffer.id.0;
                            let level = task.buffer.level;
                            match ctl.offer(now_ns, id, level, task) {
                                Offer::Admitted(t) => {
                                    drop(ctl);
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    enqueue_ref(0, t, queues, false);
                                    break;
                                }
                                Offer::Queued { shed } => {
                                    drop(ctl);
                                    // A shed victim's payload is reclaimed
                                    // here; the controller already counted
                                    // and traced it.
                                    drop(shed);
                                    break;
                                }
                                Offer::ShedSelf(t) => {
                                    drop(ctl);
                                    drop(t);
                                    break;
                                }
                                Offer::Blocked(t) => {
                                    task = t;
                                    if done.is_set() {
                                        break 'arrivals;
                                    }
                                    let _ = load.space.wait_for(&mut ctl, Duration::from_millis(2));
                                }
                            }
                        }
                    }
                    // Drain: keep holding the injector token until every
                    // queued task has been admitted or dropped, so the run
                    // cannot terminate with work still parked at intake.
                    loop {
                        if done.is_set() {
                            return;
                        }
                        let now = started.elapsed();
                        if now >= next_sample {
                            sample_now(now);
                            next_sample = now + sample_every;
                        }
                        let (admitted, drained) = {
                            let mut ctl = load.admission.lock();
                            let polled = ctl.poll(now.as_nanos() as u64);
                            (polled.admitted, ctl.queued() == 0)
                        };
                        if !admitted.is_empty() {
                            in_flight.fetch_add(admitted.len(), Ordering::SeqCst);
                            for env in admitted {
                                enqueue_ref(0, env.payload, queues, false);
                            }
                        }
                        if drained {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    if in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                        done.set();
                        for q in queues.iter() {
                            let _guard = q.queue.lock();
                            q.cv.notify_all();
                            q.space.notify_all();
                        }
                    }
                });
            }
            let mut worker_seq: usize = 0;
            for (si, stage) in self.stages.iter().enumerate() {
                let mut kind_counts: HashMap<DeviceKind, usize> = HashMap::new();
                for spec in &stage.workers {
                    let spec = *spec;
                    let slot = kind_counts.entry(spec.kind).or_insert(0);
                    let origin = DeviceRef::worker(si, spec.kind, *slot);
                    *slot += 1;
                    let filter = Arc::clone(&stage.filter);
                    let queues = &queues;
                    let in_flight = &in_flight;
                    let done = &done;
                    let out_tx = out_tx.clone();
                    let counters = &counters;
                    let dispatch = &dispatch;
                    let enqueue_ref = &enqueue;
                    let lane_weights = &lane_weights;
                    let retries = &retries;
                    let deaths = &deaths;
                    let cursors = &cursors;
                    let edge_counts = &edge_counts;
                    let death_after = self.faults.as_ref().and_then(|f| {
                        f.deaths
                            .iter()
                            .find(|d| {
                                d.stage == si
                                    && d.kind == spec.kind
                                    && d.index == origin.index as usize
                            })
                            .map(|d| d.after)
                    });
                    let fault_p = self.faults.as_ref().map_or(0.0, |f| f.task_fail);
                    // Per-worker failure stream: reproducible draws per
                    // slot, independent of thread interleaving.
                    let mut frng = SimRng::new(self.faults.as_ref().map_or(0, |f| f.seed)).fork(
                        &format!("local-faults-{si}-{:?}-{}", spec.kind, origin.index),
                    );
                    let mut handled_n: u64 = 0;
                    let pin_core = self.bind_cores.then_some(worker_seq);
                    worker_seq += 1;
                    scope.spawn(move || {
                        if let Some(core) = pin_core {
                            anthill_poller::bind_to_core(core);
                        }
                        let device_label = match spec.kind {
                            DeviceKind::Cpu => "cpu",
                            DeviceKind::Gpu => "gpu",
                        };
                        // Per-worker tallies (HotPath::Sharded): completions
                        // by level, merged into the shared report exactly
                        // once when the worker retires.
                        let mut local_counts: HashMap<u8, u64> = HashMap::new();
                        let mut finished_n: u64 = 0;
                        'work: loop {
                            // Pull the next buffer; the lane applies the
                            // policy's ordering rule (engine::select). The
                            // critical section is the pop alone.
                            let popped = {
                                let sq = &queues[si];
                                let mut q = sq.queue.lock();
                                loop {
                                    if done.is_set() {
                                        break None;
                                    }
                                    match q.pop(spec.kind) {
                                        Some((buffer, _)) => {
                                            sq.space.notify_one();
                                            break Some(buffer);
                                        }
                                        None => sq.cv.wait(&mut q),
                                    }
                                }
                            };
                            let Some(popped) = popped else { break 'work };
                            if death_after.is_some_and(|after| handled_n >= after) {
                                // The slot dies holding one popped task:
                                // hand it back to the stage queue for the
                                // survivors and retire the thread. The
                                // in-flight count is untouched — the task
                                // is still owed its completion.
                                recorder.record_now(
                                    started,
                                    origin,
                                    EventKind::WorkerDied { inflight: 1 },
                                );
                                recorder.record_now(
                                    started,
                                    DeviceRef::node_scope(si),
                                    EventKind::TaskReassigned {
                                        buffer: popped.id.0,
                                        level: popped.level,
                                    },
                                );
                                recorder.counter_add("workers_died", &[], 1);
                                recorder.counter_add("tasks_reassigned", &[], 1);
                                deaths.fetch_add(1, Ordering::SeqCst);
                                let sq = &queues[si];
                                let w = lane_weights(sq, &popped);
                                let mut q = sq.queue.lock();
                                q.push(popped, w, None);
                                drop(q);
                                sq.cv.notify_one();
                                break 'work;
                            }
                            if fault_p > 0.0 && frng.chance(fault_p) {
                                // Transient failure, decided before the
                                // handler runs: the attempt is discarded,
                                // the payload stays parked, the buffer
                                // re-enters the queue for another try.
                                let attempt = dispatch.bump_attempt(popped.id.0);
                                recorder.record_now(
                                    started,
                                    origin,
                                    EventKind::TaskRetried {
                                        buffer: popped.id.0,
                                        level: popped.level,
                                        attempt,
                                    },
                                );
                                recorder.counter_add("task_retries", &[], 1);
                                retries.fetch_add(1, Ordering::SeqCst);
                                let sq = &queues[si];
                                let w = lane_weights(sq, &popped);
                                let mut q = sq.queue.lock();
                                q.push(popped, w, None);
                                drop(q);
                                sq.cv.notify_one();
                                continue;
                            }
                            recorder.record_now(
                                started,
                                origin,
                                EventKind::Dispatch {
                                    buffer: popped.id.0,
                                    level: popped.level,
                                },
                            );
                            let payload = dispatch.claim(popped.id.0);
                            let task = LocalTask {
                                buffer: popped,
                                payload,
                            };
                            recorder.record_now(
                                started,
                                origin,
                                EventKind::Start {
                                    buffer: task.buffer.id.0,
                                    level: task.buffer.level,
                                },
                            );
                            let task_id = task.buffer.id.0;
                            let work_started = Instant::now();
                            if let ExecMode::Emulated { scale } = spec.mode {
                                let modeled = match spec.kind {
                                    DeviceKind::Cpu => task.buffer.shape.cpu,
                                    DeviceKind::Gpu => task.buffer.shape.gpu_kernel,
                                };
                                spin_for(Duration::from_secs_f64(modeled.as_secs_f64() * scale));
                            }
                            let mut fwd = Vec::new();
                            let mut back = Vec::new();
                            let level = task.buffer.level;
                            // A panicking handler must not strand the other
                            // workers: shut the pipeline down, then let the
                            // panic propagate through the scope.
                            let handled =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    filter.handle(
                                        spec.kind,
                                        task,
                                        &mut Emitter {
                                            forward: &mut fwd,
                                            back: &mut back,
                                        },
                                    );
                                }));
                            if let Err(payload) = handled {
                                done.set();
                                for q in queues.iter() {
                                    let _guard = q.queue.lock();
                                    q.cv.notify_all();
                                    q.space.notify_all();
                                }
                                std::panic::resume_unwind(payload);
                            }
                            let proc_ns = work_started.elapsed().as_nanos() as u64;
                            recorder.record_now(
                                started,
                                origin,
                                EventKind::Finish {
                                    buffer: task_id,
                                    level,
                                    proc_ns,
                                },
                            );
                            match hot_path {
                                HotPath::Coarse => {
                                    // Legacy accounting: a metrics-lock
                                    // bump and a counter-map lock bump on
                                    // every task.
                                    recorder.counter_add(
                                        "tasks_finished",
                                        &[("device", device_label)],
                                        1,
                                    );
                                    *counters.lock().entry((si, spec.kind, level)).or_insert(0) +=
                                        1;
                                }
                                HotPath::Sharded => {
                                    *local_counts.entry(level).or_insert(0) += 1;
                                    finished_n += 1;
                                }
                            }
                            handled_n += 1;
                            // Account emissions before retiring this task so
                            // the in-flight count can never dip to zero early.
                            let emitted = fwd.len() + back.len();
                            if emitted > 0 {
                                in_flight.fetch_add(emitted, Ordering::SeqCst);
                            }
                            for t in back {
                                // Recirculation bypasses the bound: a worker
                                // must not block on its own stage's queue. A
                                // declared feedback edge overrides the
                                // self-recirculation default.
                                match graph.and_then(|g| g.feedback_edge(si)) {
                                    Some(ei) => {
                                        let g = graph.expect("feedback edge implies a graph");
                                        let to = g.edge(ei).to;
                                        edge_counts[ei].fetch_add(1, Ordering::SeqCst);
                                        recorder.record_now(
                                            started,
                                            DeviceRef::node_scope(to),
                                            EventKind::EdgeEnqueued {
                                                edge: ei as u32,
                                                buffer: t.buffer.id.0,
                                                level: t.buffer.level,
                                            },
                                        );
                                        recorder.counter_add("edge_deliveries", &[], 1);
                                        enqueue_ref(to, t, queues, false);
                                    }
                                    None => enqueue_ref(si, t, queues, false),
                                }
                            }
                            for t in fwd {
                                // Destination: the matching graph out-edge,
                                // or the next stage of the implicit linear
                                // chain. `None` means the task leaves the
                                // run.
                                let dest = match graph {
                                    Some(g) => {
                                        let targets = {
                                            let mut cur = cursors
                                                .as_ref()
                                                .expect("cursors allocated with the graph")
                                                .lock();
                                            g.route_forward(si, t.buffer.level, &mut cur)
                                        };
                                        assert!(
                                            targets.len() <= 1,
                                            "native runtime cannot duplicate a payload across \
                                             {} matching out-edges",
                                            targets.len()
                                        );
                                        targets.first().map(|&ei| (g.edge(ei).to, Some(ei)))
                                    }
                                    None if si + 1 < n_stages => Some((si + 1, None)),
                                    None => None,
                                };
                                if let Some((to, edge)) = dest {
                                    if let Some(ei) = edge {
                                        edge_counts[ei].fetch_add(1, Ordering::SeqCst);
                                        recorder.record_now(
                                            started,
                                            DeviceRef::node_scope(to),
                                            EventKind::EdgeEnqueued {
                                                edge: ei as u32,
                                                buffer: t.buffer.id.0,
                                                level: t.buffer.level,
                                            },
                                        );
                                        recorder.counter_add("edge_deliveries", &[], 1);
                                    }
                                    enqueue_ref(to, t, queues, true);
                                } else if let Some(load) = load {
                                    // Open-loop terminal emission: hand the
                                    // task to the latency callback, release
                                    // its admission slot, and inject any
                                    // newly admitted intake entries before
                                    // retiring this one.
                                    let started_ns =
                                        work_started.duration_since(started).as_nanos() as u64;
                                    let finished_ns = started.elapsed().as_nanos() as u64;
                                    (load.on_complete)(t, started_ns, finished_ns);
                                    let admitted = {
                                        let mut ctl = load.admission.lock();
                                        ctl.release();
                                        let polled = ctl.poll(finished_ns);
                                        load.space.notify_all();
                                        polled.admitted
                                    };
                                    if !admitted.is_empty() {
                                        in_flight.fetch_add(admitted.len(), Ordering::SeqCst);
                                        for env in admitted {
                                            enqueue_ref(0, env.payload, queues, false);
                                        }
                                    }
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                } else {
                                    // Terminal emission: leaves the pipeline.
                                    let _ = out_tx.send(t);
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            if in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                                // Last task retired: wake everyone to exit.
                                // Taking each queue lock before notifying
                                // closes the missed-wakeup window against
                                // workers between their done-check and wait.
                                done.set();
                                for q in queues.iter() {
                                    let _guard = q.queue.lock();
                                    q.cv.notify_all();
                                    q.space.notify_all();
                                }
                            }
                        }
                        // Worker retired (shutdown or scheduled death):
                        // fold the per-worker tallies into the shared
                        // report and metrics in one step each. This runs
                        // before the scope joins, so callers reading the
                        // report or metrics after run_traced returns see
                        // every completion.
                        if !local_counts.is_empty() {
                            let mut c = counters.lock();
                            for (level, n) in local_counts {
                                *c.entry((si, spec.kind, level)).or_insert(0) += n;
                            }
                        }
                        if finished_n > 0 {
                            recorder.counter_add(
                                "tasks_finished",
                                &[("device", device_label)],
                                finished_n,
                            );
                        }
                    });
                }
            }
        });

        drop(out_tx);
        let outputs: Vec<LocalTask> = out_rx.try_iter().collect();
        // Every worker has joined: move the counter map out instead of
        // cloning a snapshot under its lock.
        let handled = counters.into_inner();
        (
            outputs,
            LocalReport {
                handled,
                elapsed: started.elapsed(),
                retries: retries.load(Ordering::SeqCst) as u64,
                deaths: deaths.load(Ordering::SeqCst) as u64,
                edge_delivered: edge_counts
                    .iter()
                    .enumerate()
                    .map(|(ei, c)| (ei as u32, c.load(Ordering::SeqCst)))
                    .collect(),
            },
        )
    }

    /// Run the pipeline to completion *deterministically*: the same
    /// filters, executed through the engine's graph-aware sequential
    /// reference driver ([`crate::engine::sequential::run_graph`]) instead
    /// of free-running threads. Each stage is one engine node with its
    /// reader scoped to its own input queue, so every edge of the graph
    /// (or of the implicit linear chain) runs its own ODDS/DQAA/DBSA
    /// instance. Assignments are a pure function of sources, weights, and
    /// policy — identical on every run and directly comparable against the
    /// DES backend (the cross-backend parity tests rely on this).
    /// [`ExecMode`] busy-waits are skipped; handlers still run for real.
    ///
    /// The demand-driven protocol runs in full per stage: every worker
    /// slot keeps a request window (see
    /// [`with_request_window`](Pipeline::with_request_window)) against the
    /// stage's reader, DBSA answers under ODDS, and recirculated tasks
    /// preempt unread inputs, as in the simulator's recalculation loop.
    pub fn run_deterministic<W: WeightProvider>(
        &self,
        sources: Vec<LocalTask>,
        weights: &W,
    ) -> (Vec<LocalTask>, LocalReport) {
        self.run_deterministic_elastic(
            sources,
            weights,
            crate::membership::MembershipSchedule::none(),
        )
    }

    /// [`run_deterministic`](Pipeline::run_deterministic) with a
    /// membership schedule: scheduled joins and drains fire as the run's
    /// completion count crosses each action's threshold (a `Join`'s node
    /// is the stage index; its device index continues the stage's
    /// same-kind numbering). This is the native backend's elastic entry
    /// point — the free-running threaded [`run`](Pipeline::run) keeps a
    /// static worker set, while deterministic runs replay the same
    /// join/drain script the DES and sequential backends execute, so
    /// elasticity is cross-backend comparable. The schedule must keep at
    /// least one assignable worker per stage or the run stalls.
    pub fn run_deterministic_elastic<W: WeightProvider>(
        &self,
        sources: Vec<LocalTask>,
        weights: &W,
        schedule: crate::membership::MembershipSchedule,
    ) -> (Vec<LocalTask>, LocalReport) {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        let started = Instant::now();
        let graph = match &self.graph {
            Some(g) => {
                assert_eq!(
                    g.n_filters(),
                    self.stages.len(),
                    "graph filters must match pipeline stages one to one"
                );
                g.clone()
            }
            None => {
                // Implicit linear chain as the degenerate graph: one
                // round-robin edge between consecutive stages.
                let names: Vec<String> = (0..self.stages.len())
                    .map(|i| format!("stage{i}"))
                    .collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                DataflowGraph::pipeline(&refs)
            }
        };
        let devices: Vec<Vec<DeviceId>> = self
            .stages
            .iter()
            .enumerate()
            .map(|(si, stage)| {
                let mut kind_counts: HashMap<DeviceKind, usize> = HashMap::new();
                stage
                    .workers
                    .iter()
                    .map(|spec| {
                        let slot = kind_counts.entry(spec.kind).or_insert(0);
                        let d = DeviceId {
                            node: si,
                            kind: spec.kind,
                            index: *slot,
                        };
                        *slot += 1;
                        d
                    })
                    .collect()
            })
            .collect();
        let mut payloads: HashMap<u64, Box<dyn Any + Send>> = HashMap::new();
        let mut seeds = Vec::with_capacity(sources.len());
        for t in sources {
            payloads.insert(t.buffer.id.0, t.payload);
            seeds.push((0, t.buffer));
        }
        let stages = &self.stages;
        let outcome = sequential::run_graph_elastic(
            SequentialConfig::new(Policy {
                kind: self.policy,
                request_size: self.request_window,
            }),
            &graph,
            &devices,
            seeds,
            weights,
            schedule,
            |filter, kind, buffer| {
                let payload = payloads
                    .remove(&buffer.id.0)
                    .expect("payload parked for dispatched buffer");
                let mut fwd = Vec::new();
                let mut back = Vec::new();
                stages[filter].filter.handle(
                    kind,
                    LocalTask {
                        buffer: buffer.clone(),
                        payload,
                    },
                    &mut Emitter {
                        forward: &mut fwd,
                        back: &mut back,
                    },
                );
                let mut em = GraphEmission::default();
                for t in back {
                    payloads.insert(t.buffer.id.0, t.payload);
                    em.feedback.push(t.buffer);
                }
                for t in fwd {
                    payloads.insert(t.buffer.id.0, t.payload);
                    em.forward.push(t.buffer);
                }
                em
            },
        );
        let outputs = outcome
            .outputs
            .into_iter()
            .map(|b| LocalTask {
                payload: payloads
                    .remove(&b.id.0)
                    .expect("payload parked for output buffer"),
                buffer: b,
            })
            .collect();
        (
            outputs,
            LocalReport {
                handled: outcome.assigned,
                elapsed: started.elapsed(),
                retries: 0,
                deaths: 0,
                edge_delivered: outcome.edge_delivered,
            },
        )
    }
}

/// A tiny settable flag (Condvar-friendly shutdown signal).
struct AtomicUsizeFlag(AtomicUsize);

impl AtomicUsizeFlag {
    fn new() -> AtomicUsizeFlag {
        AtomicUsizeFlag(AtomicUsize::new(0))
    }
    fn set(&self) {
        self.0.store(1, Ordering::SeqCst);
    }
    fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst) == 1
    }
}

/// Busy-wait for a duration (models device occupancy without yielding the
/// core, as a real device-managing thread would).
fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel, TaskShape};
    use anthill_simkit::SimDuration;

    fn tiny_shape() -> TaskShape {
        TaskShape {
            cpu: SimDuration::from_micros(50),
            gpu_kernel: SimDuration::from_micros(50),
            bytes_in: 64,
            bytes_out: 64,
        }
    }

    fn task(id: u64, value: impl std::any::Any + Send) -> LocalTask {
        LocalTask::new(
            DataBuffer {
                id: BufferId(id),
                params: TaskParams::nums(&[id as f64]),
                shape: tiny_shape(),
                level: 0,
                task: id,
            },
            value,
        )
    }

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    /// Doubles the payload integer and forwards it.
    struct Doubler;
    impl LocalFilter for Doubler {
        fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let v = *task.payload.downcast::<u64>().expect("u64 payload");
            out.forward(LocalTask::new(task.buffer, v * 2));
        }
    }

    #[test]
    fn single_stage_processes_everything() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Doubler),
            vec![WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            }],
        );
        let (out, report) = p.run((0..100).map(|i| task(i, i)).collect(), &oracle());
        assert_eq!(out.len(), 100);
        assert_eq!(report.total(), 100);
        let mut values: Vec<u64> = out
            .into_iter()
            .map(|t| *t.payload.downcast::<u64>().unwrap())
            .collect();
        values.sort_unstable();
        assert_eq!(values, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn two_stages_chain() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        let workers = vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            2
        ];
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Doubler), workers);
        let (out, report) = p.run((0..50).map(|i| task(i, 1u64)).collect(), &oracle());
        assert_eq!(out.len(), 50);
        assert!(out
            .iter()
            .all(|t| *t.payload.downcast_ref::<u64>().unwrap() == 4));
        assert_eq!(report.total(), 100);
    }

    /// Recirculates level-0 tasks once at level 1, then forwards.
    struct Recirculator;
    impl LocalFilter for Recirculator {
        fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            if task.buffer.level == 0 {
                let mut buffer = task.buffer.clone();
                buffer.level = 1;
                buffer.id = BufferId(buffer.id.0 + 1_000_000);
                out.recirculate(LocalTask::new(buffer, ()));
            } else {
                out.forward(LocalTask::new(task.buffer, ()));
            }
        }
    }

    #[test]
    fn recirculation_reprocesses_at_next_level() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Recirculator),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                3
            ],
        );
        let (out, report) = p.run((0..40).map(|i| task(i, ())).collect(), &oracle());
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|t| t.buffer.level == 1));
        assert_eq!(report.count(0, DeviceKind::Cpu, 0), 40);
        assert_eq!(report.count(0, DeviceKind::Cpu, 1), 40);
    }

    /// Forwards tasks unchanged (identity filter).
    struct Identity;
    impl LocalFilter for Identity {
        fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            out.forward(task);
        }
    }

    #[test]
    fn ddwrr_steers_big_tasks_to_the_emulated_gpu() {
        // Mixed workload: many small tiles, some large. With sorted pops
        // the GPU worker should end up with the large ones.
        let model = NbiaCostModel::paper_calibrated();
        let mk = |id: u64, side: u32| {
            LocalTask::new(
                DataBuffer {
                    id: BufferId(id),
                    params: TaskParams::nums(&[f64::from(side)]),
                    shape: model.tile(side),
                    level: if side > 32 { 1 } else { 0 },
                    task: id,
                },
                (),
            )
        };
        let mut sources = Vec::new();
        for i in 0..60 {
            sources.push(mk(i, 32));
        }
        for i in 60..72 {
            sources.push(mk(i, 512));
        }
        // Scale keeps per-task times well above thread-spawn jitter so the
        // policy, not the OS scheduler, decides the assignment.
        let mut p = Pipeline::new(PolicyKind::DdWrr);
        p.add_stage(
            Arc::new(Identity),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Emulated { scale: 0.05 },
                },
                WorkerSpec {
                    kind: DeviceKind::Gpu,
                    mode: ExecMode::Emulated { scale: 0.05 },
                },
            ],
        );
        let (out, report) = p.run(sources, &oracle());
        assert_eq!(out.len(), 72);
        let gpu_high = report.count(0, DeviceKind::Gpu, 1);
        let cpu_high = report.count(0, DeviceKind::Cpu, 1);
        assert!(
            gpu_high >= 10 && cpu_high <= 2,
            "high-res: gpu {gpu_high}, cpu {cpu_high}"
        );
    }

    /// Panics on a poison value.
    struct Poison;
    impl LocalFilter for Poison {
        fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let v = *task.payload.downcast_ref::<u64>().expect("u64");
            assert!(v != 13, "poison task");
            out.forward(task);
        }
    }

    #[test]
    fn panicking_filter_propagates_instead_of_hanging() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Poison),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                2
            ],
        );
        let sources: Vec<LocalTask> = (0..40).map(|i| task(i, i)).collect();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.run(sources, &oracle())));
        assert!(result.is_err(), "the poison panic must propagate");
    }

    #[test]
    fn bounded_queues_still_process_everything() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs).with_capacity(2);
        let workers = vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            2
        ];
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Doubler), workers);
        let (out, report) = p.run((0..200u64).map(|i| task(i, i)).collect(), &oracle());
        assert_eq!(out.len(), 200);
        assert_eq!(report.total(), 600);
        let mut values: Vec<u64> = out
            .into_iter()
            .map(|t| *t.payload.downcast::<u64>().unwrap())
            .collect();
        values.sort_unstable();
        assert_eq!(values, (0..200).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_run_matches_threaded_results() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        let workers = vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            2
        ];
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Doubler), workers);
        let (out, report) =
            p.run_deterministic((0..50).map(|i| task(i, 1u64)).collect(), &oracle());
        assert_eq!(out.len(), 50);
        assert!(out
            .iter()
            .all(|t| *t.payload.downcast_ref::<u64>().unwrap() == 4));
        assert_eq!(report.total(), 100);
    }

    #[test]
    fn deterministic_run_recirculates_and_repeats_exactly() {
        let mk = || {
            let mut p = Pipeline::new(PolicyKind::DdWrr);
            p.add_stage(
                Arc::new(Recirculator),
                vec![
                    WorkerSpec {
                        kind: DeviceKind::Cpu,
                        mode: ExecMode::Native,
                    },
                    WorkerSpec {
                        kind: DeviceKind::Gpu,
                        mode: ExecMode::Native,
                    },
                ],
            );
            p.run_deterministic((0..40).map(|i| task(i, ())).collect(), &oracle())
        };
        let (out_a, rep_a) = mk();
        let (out_b, rep_b) = mk();
        assert_eq!(out_a.len(), 40);
        assert!(out_a.iter().all(|t| t.buffer.level == 1));
        assert_eq!(rep_a.total(), 80, "40 originals + 40 recirculated");
        assert_eq!(rep_a.handled, rep_b.handled, "assignments are reproducible");
        let ids_a: Vec<u64> = out_a.iter().map(|t| t.buffer.id.0).collect();
        let ids_b: Vec<u64> = out_b.iter().map(|t| t.buffer.id.0).collect();
        assert_eq!(ids_a, ids_b, "output order is reproducible");
    }

    #[test]
    fn transient_failures_retry_until_every_task_completes() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs).with_faults(LocalFaults::task_fail(3, 0.3));
        p.add_stage(
            Arc::new(Doubler),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                2
            ],
        );
        let (out, report) = p.run((0..100).map(|i| task(i, i)).collect(), &oracle());
        assert_eq!(out.len(), 100);
        assert_eq!(report.total(), 100, "completions counted once per task");
        assert!(report.retries > 0, "a 30% failure rate must surface");
        let mut values: Vec<u64> = out
            .into_iter()
            .map(|t| *t.payload.downcast::<u64>().unwrap())
            .collect();
        values.sort_unstable();
        assert_eq!(
            values,
            (0..100).map(|i| i * 2).collect::<Vec<_>>(),
            "each task ran to completion exactly once"
        );
    }

    #[test]
    fn a_dying_worker_reassigns_its_task_and_the_survivors_finish() {
        let faults = LocalFaults {
            seed: 0,
            task_fail: 0.0,
            deaths: vec![LocalDeathSpec {
                stage: 0,
                kind: DeviceKind::Cpu,
                index: 0,
                after: 5,
            }],
        };
        let mut p = Pipeline::new(PolicyKind::DdFcfs).with_faults(faults);
        p.add_stage(
            Arc::new(Doubler),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                2
            ],
        );
        let (out, report) = p.run((0..80).map(|i| task(i, i)).collect(), &oracle());
        assert_eq!(out.len(), 80, "the dead slot's task was not lost");
        assert_eq!(report.total(), 80);
        assert_eq!(report.deaths, 1);
    }

    #[test]
    #[should_panic(expected = "alive floor")]
    fn killing_every_worker_of_a_stage_is_rejected() {
        let faults = LocalFaults {
            seed: 0,
            task_fail: 0.0,
            deaths: vec![LocalDeathSpec {
                stage: 0,
                kind: DeviceKind::Cpu,
                index: 0,
                after: 1,
            }],
        };
        let mut p = Pipeline::new(PolicyKind::DdFcfs).with_faults(faults);
        p.add_stage(
            Arc::new(Doubler),
            vec![WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            }],
        );
        let _ = p.run(vec![task(0, 0u64)], &oracle());
    }

    #[test]
    fn both_hot_paths_conserve_tasks_and_agree_on_totals() {
        for hot_path in [HotPath::Coarse, HotPath::Sharded] {
            let mut p = Pipeline::new(PolicyKind::DdFcfs).with_hot_path(hot_path);
            p.add_stage(
                Arc::new(Doubler),
                vec![
                    WorkerSpec {
                        kind: DeviceKind::Cpu,
                        mode: ExecMode::Native,
                    };
                    3
                ],
            );
            let (out, report) = p.run((0..150).map(|i| task(i, i)).collect(), &oracle());
            assert_eq!(out.len(), 150, "{hot_path:?} lost tasks");
            assert_eq!(report.total(), 150);
            assert_eq!(report.count(0, DeviceKind::Cpu, 0), 150);
            let mut values: Vec<u64> = out
                .into_iter()
                .map(|t| *t.payload.downcast::<u64>().unwrap())
                .collect();
            values.sort_unstable();
            assert_eq!(values, (0..150).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_source_returns_immediately() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Identity),
            vec![WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            }],
        );
        let (out, report) = p.run(Vec::new(), &oracle());
        assert!(out.is_empty());
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn open_loop_run_completes_every_admitted_task() {
        use crate::engine::admission::OverloadPolicy;
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Doubler),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                2
            ],
        );
        // 500 arrivals 20 µs apart; an uncontended run admits everything.
        let arrivals: Vec<u64> = (0..500u64).map(|i| i * 20_000).collect();
        let completions = Mutex::new(Vec::new());
        let report = p.run_load(
            &arrivals,
            &|i, arrival_ns| task(i, arrival_ns),
            LoadConfig {
                admission: AdmissionConfig {
                    inflight_cap: 64,
                    queue_cap: 256,
                    policy: OverloadPolicy::Block,
                },
                sample_every: Duration::from_millis(1),
            },
            &oracle(),
            &Recorder::disabled(),
            &|t, started_ns, finished_ns| {
                assert!(finished_ns >= started_ns);
                completions.lock().push(t.buffer.id.0);
            },
        );
        assert_eq!(report.admission.generated, 500);
        assert_eq!(report.admission.admitted, 500);
        assert!(report.admission.conserved());
        assert_eq!(report.completed, 500);
        assert_eq!(report.local.total(), 500);
        let mut ids = completions.into_inner();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        assert!(!report.queue_depth.is_empty(), "sampled queue depths");
        assert!(
            report
                .queue_depth
                .iter()
                .all(|s| s.per_stage.iter().sum::<u64>() == s.ready),
            "per-stage depths must sum to the aggregate"
        );
    }

    #[test]
    fn open_loop_shed_policy_bounds_the_run_and_conserves() {
        use crate::engine::admission::OverloadPolicy;
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(
            Arc::new(Doubler),
            vec![WorkerSpec {
                kind: DeviceKind::Cpu,
                // 50 µs modeled cost per task at scale 1.0: one worker
                // saturates well below the offered rate.
                mode: ExecMode::Emulated { scale: 1.0 },
            }],
        );
        // Offered every 5 µs against ~50 µs service: 10x overload.
        let arrivals: Vec<u64> = (0..2_000u64).map(|i| i * 5_000).collect();
        let report = p.run_load(
            &arrivals,
            &|i, arrival_ns| task(i, arrival_ns),
            LoadConfig {
                admission: AdmissionConfig {
                    inflight_cap: 8,
                    queue_cap: 16,
                    policy: OverloadPolicy::ShedOldest,
                },
                sample_every: Duration::from_millis(1),
            },
            &oracle(),
            &Recorder::disabled(),
            &|_t, _s, _f| {},
        );
        assert_eq!(report.admission.generated, 2_000);
        assert!(report.admission.conserved());
        assert!(report.admission.shed > 0, "overload must shed");
        assert_eq!(report.completed, report.admission.admitted);
        // Bounded: intake never exceeded the configured queue cap.
        assert!(report.queue_depth.iter().all(|s| s.intake <= 16));
    }

    #[test]
    fn graph_pipeline_matches_the_implicit_chain() {
        // A 3-stage chain expressed as an explicit graph behaves like the
        // linear default — and additionally reports per-edge deliveries.
        let mk = |graph: bool| {
            let mut p = Pipeline::new(PolicyKind::DdFcfs);
            if graph {
                p = p.with_graph(DataflowGraph::pipeline(&["a", "b", "c"]));
            }
            let workers = vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                2
            ];
            p.add_stage(Arc::new(Doubler), workers.clone());
            p.add_stage(Arc::new(Doubler), workers.clone());
            p.add_stage(Arc::new(Doubler), workers);
            p.run((0..60).map(|i| task(i, 1u64)).collect(), &oracle())
        };
        let (out_g, rep_g) = mk(true);
        let (out_l, rep_l) = mk(false);
        assert_eq!(out_g.len(), 60);
        assert_eq!(out_l.len(), 60);
        assert_eq!(rep_g.total(), rep_l.total());
        assert_eq!(rep_g.edge_delivered.get(&0), Some(&60));
        assert_eq!(rep_g.edge_delivered.get(&1), Some(&60));
        assert!(rep_l.edge_delivered.is_empty());
        assert!(out_g
            .iter()
            .all(|t| *t.payload.downcast_ref::<u64>().unwrap() == 8));
    }

    #[test]
    fn graph_diamond_splits_round_robin_and_conserves_per_edge() {
        let mut p = Pipeline::new(PolicyKind::DdFcfs)
            .with_graph(DataflowGraph::diamond("src", "left", "right", "sink"));
        let workers = vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            2
        ];
        p.add_stage(Arc::new(Identity), workers.clone());
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Doubler), workers.clone());
        p.add_stage(Arc::new(Identity), workers);
        let (out, report) = p.run((0..40).map(|i| task(i, 1u64)).collect(), &oracle());
        assert_eq!(out.len(), 40);
        assert_eq!(report.total(), 120, "src + one branch + sink per task");
        // The split cursor alternates deterministically regardless of
        // thread interleaving: exactly half the tasks take each branch.
        assert_eq!(report.edge_delivered.get(&0), Some(&20));
        assert_eq!(report.edge_delivered.get(&1), Some(&20));
        assert_eq!(report.edge_delivered.get(&2), Some(&20));
        assert_eq!(report.edge_delivered.get(&3), Some(&20));
        assert!(out
            .iter()
            .all(|t| *t.payload.downcast_ref::<u64>().unwrap() == 2));
    }

    #[test]
    fn feedback_edge_routes_recirculation_upstream() {
        use crate::graph::{EdgeSpec, FilterSpec};
        // B's recirculation travels B -> A over a declared feedback edge
        // instead of re-entering B's own queue: every task makes two full
        // round trips through the chain.
        let g = DataflowGraph::new(
            vec![FilterSpec::new("a"), FilterSpec::new("b")],
            vec![EdgeSpec::round_robin(0, 1), EdgeSpec::feedback(1, 0)],
        )
        .expect("valid feedback graph");
        let mut p = Pipeline::new(PolicyKind::DdFcfs).with_graph(g);
        let workers = vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            2
        ];
        p.add_stage(Arc::new(Identity), workers.clone());
        p.add_stage(Arc::new(Recirculator), workers);
        let (out, report) = p.run((0..40).map(|i| task(i, ())).collect(), &oracle());
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|t| t.buffer.level == 1));
        assert_eq!(report.count(0, DeviceKind::Cpu, 0), 40);
        assert_eq!(report.count(0, DeviceKind::Cpu, 1), 40);
        assert_eq!(report.count(1, DeviceKind::Cpu, 0), 40);
        assert_eq!(report.count(1, DeviceKind::Cpu, 1), 40);
        assert_eq!(report.edge_delivered.get(&0), Some(&80));
        assert_eq!(report.edge_delivered.get(&1), Some(&40));
    }

    #[test]
    fn deterministic_graph_diamond_is_reproducible() {
        let mk = || {
            let mut p = Pipeline::new(PolicyKind::DdWrr)
                .with_graph(DataflowGraph::diamond("src", "left", "right", "sink"));
            let workers = vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                },
                WorkerSpec {
                    kind: DeviceKind::Gpu,
                    mode: ExecMode::Native,
                },
            ];
            for _ in 0..4 {
                p.add_stage(Arc::new(Doubler), workers.clone());
            }
            p.run_deterministic((0..32).map(|i| task(i, 1u64)).collect(), &oracle())
        };
        let (out_a, rep_a) = mk();
        let (out_b, rep_b) = mk();
        assert_eq!(out_a.len(), 32);
        assert!(out_a
            .iter()
            .all(|t| *t.payload.downcast_ref::<u64>().unwrap() == 8));
        assert_eq!(rep_a.total(), 96, "src + one branch + sink per task");
        assert_eq!(rep_a.handled, rep_b.handled, "assignments are reproducible");
        assert_eq!(rep_a.edge_delivered, rep_b.edge_delivered);
        assert_eq!(rep_a.edge_delivered.get(&0), Some(&16));
        assert_eq!(rep_a.edge_delivered.get(&1), Some(&16));
        assert_eq!(rep_a.edge_delivered.get(&2), Some(&16));
        assert_eq!(rep_a.edge_delivered.get(&3), Some(&16));
        let ids_a: Vec<u64> = out_a.iter().map(|t| t.buffer.id.0).collect();
        let ids_b: Vec<u64> = out_b.iter().map(|t| t.buffer.id.0).collect();
        assert_eq!(ids_a, ids_b, "output order is reproducible");
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn broadcast_graphs_are_rejected_by_the_native_runtime() {
        use crate::graph::{EdgeSpec, FilterSpec};
        let g = DataflowGraph::new(
            vec![
                FilterSpec::new("src"),
                FilterSpec::new("a"),
                FilterSpec::new("b"),
            ],
            vec![EdgeSpec::broadcast(0, 1), EdgeSpec::broadcast(0, 2)],
        )
        .expect("valid broadcast graph");
        let _ = Pipeline::new(PolicyKind::DdFcfs).with_graph(g);
    }
}
