//! DQAA — the Dynamic Queue Adaptation Algorithm (paper Section 5.3.1,
//! Algorithms 2 and 3).
//!
//! Derived from TCP Vegas congestion control: each worker thread
//! continuously measures the upstream request round-trip latency and its
//! own per-buffer processing time. Their ratio is the number of buffers
//! that must be in flight/queued to hide the request latency; the target
//! request window (`streamRequestSize`) is nudged one step toward it after
//! every processed buffer. The result is the smallest window that keeps
//! the processor busy — large enough to avoid idling, small enough to
//! avoid end-of-run load imbalance (the two contradictory premises of
//! Section 5.3).
//!
//! This module holds the adaptation state machine alone; the engine's
//! per-worker request windows ([`crate::engine::RequestWindow`]) own when
//! it is fed and how its target bounds in-flight requests, identically on
//! every backend.

use anthill_simkit::SimDuration;

/// Per-worker-thread DQAA state.
///
/// ```
/// use anthill::dqaa::Dqaa;
/// use anthill_simkit::SimDuration;
///
/// let mut window = Dqaa::new(64);
/// // Requests take 6 ms round trip; buffers take 2 ms to process:
/// // three buffers must be in flight to hide the latency.
/// for _ in 0..10 {
///     window.observe_latency(SimDuration::from_millis(6));
///     window.observe_processing(SimDuration::from_millis(2));
/// }
/// assert_eq!(window.target(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Dqaa {
    target: usize,
    /// Most recent request round-trip latency.
    last_latency: SimDuration,
    /// Upper bound on the window (guards against measurement spikes).
    max_target: usize,
    /// Trace of `(processed_count, target)` after each adaptation.
    history: Vec<usize>,
    processed: u64,
}

impl Dqaa {
    /// Fresh state: target window of 1, per Algorithm 2's initialization.
    pub fn new(max_target: usize) -> Dqaa {
        Dqaa {
            target: 1,
            last_latency: SimDuration::ZERO,
            max_target: max_target.max(1),
            history: Vec::new(),
            processed: 0,
        }
    }

    /// Current target request window.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Buffers processed so far (adaptation steps).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Record a completed request round trip (ThreadRequester's
    /// `requestlatency` measurement).
    pub fn observe_latency(&mut self, latency: SimDuration) {
        self.last_latency = latency;
    }

    /// Record a processed buffer (ThreadWorker's `timetoprocess`) and adapt
    /// the target window one step toward `latency / time_to_process`.
    /// Returns the new target.
    pub fn observe_processing(&mut self, time_to_process: SimDuration) -> usize {
        self.processed += 1;
        let desired = self.last_latency.ratio(time_to_process);
        // Algorithm 2: single-step increments/decrements toward the ratio.
        if desired > self.target as f64 && self.target < self.max_target {
            self.target += 1;
        } else if desired < self.target as f64 && self.target > 1 {
            self.target -= 1;
        }
        self.history.push(self.target);
        self.target
    }

    /// The adaptation trace (target after each processed buffer).
    pub fn history(&self) -> &[usize] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn starts_at_one() {
        let d = Dqaa::new(64);
        assert_eq!(d.target(), 1);
    }

    #[test]
    fn converges_to_latency_processing_ratio() {
        let mut d = Dqaa::new(64);
        // Latency 10 ms, processing 2 ms => ratio 5.
        for _ in 0..20 {
            d.observe_latency(ms(10));
            d.observe_processing(ms(2));
        }
        assert_eq!(d.target(), 5);
        // Stays there.
        for _ in 0..10 {
            d.observe_latency(ms(10));
            d.observe_processing(ms(2));
        }
        assert_eq!(d.target(), 5);
    }

    #[test]
    fn shrinks_when_processing_slows() {
        let mut d = Dqaa::new(64);
        for _ in 0..20 {
            d.observe_latency(ms(10));
            d.observe_processing(ms(1));
        }
        assert_eq!(d.target(), 10);
        // Buffers get heavier (e.g. the end-of-run build-up of
        // high-resolution tiles on a CPU-only node, Fig. 12b).
        for _ in 0..20 {
            d.observe_latency(ms(10));
            d.observe_processing(ms(50));
        }
        assert_eq!(d.target(), 1);
    }

    #[test]
    fn never_leaves_bounds() {
        let mut d = Dqaa::new(8);
        for _ in 0..100 {
            d.observe_latency(ms(1_000));
            d.observe_processing(SimDuration::from_micros(1));
        }
        assert_eq!(d.target(), 8);
        for _ in 0..100 {
            d.observe_latency(SimDuration::ZERO);
            d.observe_processing(ms(1));
        }
        assert_eq!(d.target(), 1);
    }

    #[test]
    fn zero_processing_time_is_safe() {
        let mut d = Dqaa::new(16);
        d.observe_latency(ms(5));
        // ratio = inf => grow by one step only.
        assert_eq!(d.observe_processing(SimDuration::ZERO), 2);
    }

    #[test]
    fn history_records_every_step() {
        let mut d = Dqaa::new(64);
        for _ in 0..7 {
            d.observe_latency(ms(10));
            d.observe_processing(ms(2));
        }
        assert_eq!(d.history().len(), 7);
        assert_eq!(d.processed(), 7);
        assert_eq!(*d.history().last().unwrap(), d.target());
    }
}
