//! Learned scheduling policies: run-time-corrected weights behind the
//! classic demand-driven machinery.
//!
//! The paper's DDWRR/ODDS heuristics rank ready buffers by weights from a
//! *static* profile (oracle or benchmark-time kNN). This module closes
//! the loop with [`LearnedWeights`], a [`WeightProvider`] that
//!
//! 1. maintains an **online service-time profile**
//!    ([`anthill_estimator::OnlineProfile`]) fed by the engine with every
//!    finished task's span (the same spans the TCP backend re-stamps from
//!    `remote_start`/`remote_finish`), replacing the base prediction per
//!    `(device, shape)` once enough spans accrue;
//! 2. adds an **affinity** term ([`PolicyKind::Affinity`]): a per-node
//!    buffer-residency map — which device class on a node recently
//!    completed which task shape, fed by the transfer layer's completion
//!    path — discounts the predicted time of a resident class
//!    (XKaapi-style `score = predicted − affinity bonus`);
//! 3. runs a **contextual bandit** ([`PolicyKind::Bandit`]): a diagonal
//!    LinUCB-lite per device arm over the features
//!    `[bias, queue depth, window occupancy, profile mean ratio, profile
//!    variance]`, with a deterministic epsilon floor.
//!
//! ## Determinism contract
//!
//! Every backend drives the same engine with the same callback order, so
//! cross-backend parity for a *stateful* policy holds iff the learner is
//! deterministic given that order. [`LearnedWeights`] guarantees this by
//! construction:
//!
//! * state mutates **only** in [`WeightProvider::observe`] (driven by the
//!   engine's `task_finished`) and in the bandit's pending-feature
//!   bookkeeping inside [`WeightProvider::decide`] — both engine-ordered;
//! * the epsilon floor draws **no sequential RNG**: exploration is a pure
//!   hash `fnv1a64(seed ‖ buffer id ‖ task ‖ shape)`, so the verdict for
//!   a buffer does not depend on how many draws happened before it;
//! * all maps are `BTreeMap`s — iteration order never leaks timing.
//!
//! Same seed ⇒ bit-identical decision sequence, on every backend.

use crate::buffer::DataBuffer;
use crate::policy::PolicyKind;
use crate::weights::{pair_weight, Decision, DecisionCtx, ProfileUpdate, WeightProvider};
use anthill_estimator::{fnv1a64, DeviceClass, OnlineProfile};
use anthill_hetsim::DeviceKind;
use std::collections::BTreeMap;

/// Feature-vector arity of the bandit (see module docs).
pub const FEATURES: usize = 5;

/// Bound on remembered decision features awaiting their span (guards
/// workloads whose tasks are shed before finishing).
const PENDING_CAP: usize = 1 << 16;

/// Tunables of a [`LearnedWeights`] provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Seed of the deterministic exploration hash.
    pub seed: u64,
    /// EWMA factor of the online profile.
    pub alpha: f64,
    /// Bounded-history window of the online profile's quantile sketch.
    pub history: usize,
    /// Spans per `(device, shape)` cell before the online mean overrides
    /// the base prediction.
    pub min_obs: u64,
    /// Fraction of predicted time credited when the class is resident
    /// (the affinity bonus).
    pub affinity_bonus: f64,
    /// LinUCB exploration width.
    pub ucb_alpha: f64,
    /// Epsilon floor, parts-per-million of decisions forced to explore.
    pub epsilon_ppm: u64,
    /// Weight multiplier applied to the bandit's chosen arm.
    pub bandit_boost: f64,
}

impl LearnedConfig {
    /// The calibrated defaults every driver uses.
    pub fn standard(seed: u64) -> LearnedConfig {
        LearnedConfig {
            seed,
            alpha: 0.25,
            history: 64,
            min_obs: 2,
            affinity_bonus: 0.25,
            ucb_alpha: 0.5,
            epsilon_ppm: 50_000,
            bandit_boost: 4.0,
        }
    }
}

/// One diagonal-LinUCB arm: per-feature ridge accumulators.
#[derive(Debug, Clone)]
struct Arm {
    a: [f64; FEATURES],
    b: [f64; FEATURES],
    pulls: u64,
}

impl Arm {
    fn new() -> Arm {
        Arm {
            a: [1.0; FEATURES],
            b: [0.0; FEATURES],
            pulls: 0,
        }
    }

    /// `theta · x + ucb_alpha * sqrt(sum x_i^2 / A_i)`.
    fn score(&self, x: &[f64; FEATURES], ucb_alpha: f64) -> f64 {
        let mut mean = 0.0;
        let mut width = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            mean += (self.b[i] / self.a[i]) * xi;
            width += xi * xi / self.a[i];
        }
        mean + ucb_alpha * width.sqrt()
    }

    fn update(&mut self, x: &[f64; FEATURES], reward: f64) {
        for (i, &xi) in x.iter().enumerate() {
            self.a[i] += xi * xi;
            self.b[i] += reward * xi;
        }
        self.pulls += 1;
    }
}

#[derive(Debug)]
struct State {
    profile: OnlineProfile,
    /// `(node, device class, shape) -> completions`: the residency map.
    residency: BTreeMap<(usize, u16, u64), u64>,
    /// Per-`(node, worker)` observed-span tally (chaos tests assert a
    /// dead worker's tally freezes).
    worker_obs: BTreeMap<(usize, usize), u64>,
    arms: [Arm; 2],
    /// Bandit features remembered per buffer id until its span arrives.
    pending: BTreeMap<u64, [f64; FEATURES]>,
    decisions: u64,
    updates: u64,
}

/// A learned [`WeightProvider`]: online-corrected predictions from a
/// wrapped base provider, plus the affinity or bandit decision rule
/// (picked by the [`PolicyKind`] it is built for). See the module docs
/// for the determinism contract.
pub struct LearnedWeights<W> {
    base: W,
    kind: PolicyKind,
    cfg: LearnedConfig,
    state: parking_lot::Mutex<State>,
}

impl<W: WeightProvider> LearnedWeights<W> {
    /// Learned provider for `kind` (must be [`PolicyKind::learned`])
    /// over a base provider supplying cold-start predictions.
    pub fn new(kind: PolicyKind, base: W, cfg: LearnedConfig) -> LearnedWeights<W> {
        assert!(
            kind.learned(),
            "LearnedWeights requires a learned policy kind"
        );
        LearnedWeights {
            base,
            kind,
            cfg,
            state: parking_lot::Mutex::new(State {
                profile: OnlineProfile::new(cfg.alpha, cfg.history),
                residency: BTreeMap::new(),
                worker_obs: BTreeMap::new(),
                arms: [Arm::new(), Arm::new()],
                pending: BTreeMap::new(),
                decisions: 0,
                updates: 0,
            }),
        }
    }

    /// Like [`new`](Self::new), warm-started from a persisted profile.
    pub fn with_profile(
        kind: PolicyKind,
        base: W,
        cfg: LearnedConfig,
        profile: OnlineProfile,
    ) -> LearnedWeights<W> {
        let lw = LearnedWeights::new(kind, base, cfg);
        lw.state.lock().profile = profile;
        lw
    }

    /// Stable shape key of a buffer (hash of its parameters) — matches
    /// the key reported in `profile_updated` events.
    pub fn shape_key(buf: &DataBuffer) -> u64 {
        fnv1a64(format!("{:?}", buf.params).as_bytes())
    }

    fn class_index(kind: DeviceKind) -> usize {
        match kind {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
        }
    }

    fn class_of(kind: DeviceKind) -> DeviceClass {
        match kind {
            DeviceKind::Cpu => DeviceClass::CPU,
            DeviceKind::Gpu => DeviceClass::GPU,
        }
    }

    /// Base prediction overridden by the online EWMA once the cell has
    /// `min_obs` spans.
    fn blended_time(&self, state: &State, buf: &DataBuffer, kind: DeviceKind, shape: u64) -> f64 {
        let class = Self::class_of(kind);
        if state.profile.count(class, shape) >= self.cfg.min_obs {
            if let Some(mean) = state.profile.mean(class, shape) {
                return mean.max(1e-12);
            }
        }
        self.base.predict_time(buf, kind)
    }

    /// Deterministic exploration hash of one buffer under this seed.
    fn explore_hash(&self, buf: &DataBuffer, shape: u64) -> u64 {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&self.cfg.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&buf.id.0.to_le_bytes());
        bytes[16..24].copy_from_slice(&buf.task.to_le_bytes());
        bytes[24..32].copy_from_slice(&shape.to_le_bytes());
        fnv1a64(&bytes)
    }

    fn features(
        &self,
        state: &State,
        ctx: &DecisionCtx,
        tc: f64,
        tg: f64,
        shape: u64,
    ) -> [f64; FEATURES] {
        let var = state
            .profile
            .cell(DeviceClass::CPU, shape)
            .map_or(0.0, |c| c.variance())
            + state
                .profile
                .cell(DeviceClass::GPU, shape)
                .map_or(0.0, |c| c.variance());
        [
            1.0,
            (1.0 + ctx.queue_depth as f64).ln(),
            (1.0 + ctx.inflight as f64).ln(),
            (tc.max(1e-12) / tg.max(1e-12)).ln().clamp(-10.0, 10.0),
            (1.0 + var.sqrt()).ln(),
        ]
    }

    /// Spans observed from `(node, worker)` so far.
    pub fn observations_for(&self, node: usize, worker: usize) -> u64 {
        *self
            .state
            .lock()
            .worker_obs
            .get(&(node, worker))
            .unwrap_or(&0)
    }

    /// Total decisions rendered.
    pub fn decisions(&self) -> u64 {
        self.state.lock().decisions
    }

    /// Total profile updates ingested.
    pub fn updates(&self) -> u64 {
        self.state.lock().updates
    }

    /// Serialize the online profile (see [`OnlineProfile::to_text`]).
    pub fn profile_text(&self) -> String {
        self.state.lock().profile.to_text()
    }
}

impl<W: WeightProvider> WeightProvider for LearnedWeights<W> {
    fn predict_time(&self, buf: &DataBuffer, kind: DeviceKind) -> f64 {
        let shape = Self::shape_key(buf);
        let state = self.state.lock();
        self.blended_time(&state, buf, kind, shape)
    }

    fn observe(
        &self,
        buf: &DataBuffer,
        node: usize,
        worker: usize,
        kind: DeviceKind,
        secs: f64,
    ) -> Option<ProfileUpdate> {
        let shape = Self::shape_key(buf);
        let class = Self::class_of(kind);
        let mut state = self.state.lock();
        let count = state.profile.observe(class, shape, secs);
        let mean = state.profile.mean(class, shape).unwrap_or(secs);
        *state.residency.entry((node, class.0, shape)).or_insert(0) += 1;
        *state.worker_obs.entry((node, worker)).or_insert(0) += 1;
        if self.kind == PolicyKind::Bandit {
            if let Some(x) = state.pending.remove(&buf.id.0) {
                let reward = -secs.max(1e-9).ln();
                state.arms[Self::class_index(kind)].update(&x, reward);
            }
        }
        state.updates += 1;
        Some(ProfileUpdate {
            key: shape,
            count,
            mean_ns: (mean * 1e9).round() as u64,
        })
    }

    fn decide(&self, buf: &DataBuffer, ctx: &DecisionCtx) -> Option<Decision> {
        let shape = Self::shape_key(buf);
        let mut state = self.state.lock();
        let tc = self.blended_time(&state, buf, DeviceKind::Cpu, shape);
        let tg = self.blended_time(&state, buf, DeviceKind::Gpu, shape);
        let decision = match self.kind {
            PolicyKind::Affinity => {
                let discount = |t: f64, class: DeviceClass| {
                    if state
                        .residency
                        .get(&(ctx.node, class.0, shape))
                        .is_some_and(|&n| n > 0)
                    {
                        t * (1.0 - self.cfg.affinity_bonus)
                    } else {
                        t
                    }
                };
                let ac = discount(tc, DeviceClass::CPU);
                let ag = discount(tg, DeviceClass::GPU);
                Decision {
                    weights: [pair_weight(ac, ag), pair_weight(ag, ac)],
                    arm: if ag < ac {
                        DeviceKind::Gpu
                    } else {
                        DeviceKind::Cpu
                    },
                    explore: false,
                }
            }
            PolicyKind::Bandit => {
                let x = self.features(&state, ctx, tc, tg, shape);
                let score_c = state.arms[0].score(&x, self.cfg.ucb_alpha);
                let score_g = state.arms[1].score(&x, self.cfg.ucb_alpha);
                let h = self.explore_hash(buf, shape);
                let explore = h % 1_000_000 < self.cfg.epsilon_ppm;
                let arm = if explore {
                    if (h >> 33) & 1 == 1 {
                        DeviceKind::Gpu
                    } else {
                        DeviceKind::Cpu
                    }
                } else if score_g > score_c {
                    DeviceKind::Gpu
                } else {
                    DeviceKind::Cpu
                };
                let mut weights = [pair_weight(tc, tg), pair_weight(tg, tc)];
                weights[Self::class_index(arm)] *= self.cfg.bandit_boost;
                if state.pending.len() >= PENDING_CAP {
                    let oldest = *state.pending.keys().next().expect("cap > 0");
                    state.pending.remove(&oldest);
                }
                state.pending.insert(buf.id.0, x);
                Decision {
                    weights,
                    arm,
                    explore,
                }
            }
            _ => unreachable!("constructor rejects non-learned kinds"),
        };
        state.decisions += 1;
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel};

    fn tile(id: u64, side: u32) -> DataBuffer {
        let m = NbiaCostModel::paper_calibrated();
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: m.tile(side),
            level: 0,
            task: id,
        }
    }

    fn learner(kind: PolicyKind) -> LearnedWeights<OracleWeights> {
        LearnedWeights::new(
            kind,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            LearnedConfig::standard(7),
        )
    }

    #[test]
    #[should_panic(expected = "learned policy kind")]
    fn rejects_classic_kinds() {
        let _ = learner(PolicyKind::DdWrr);
    }

    #[test]
    fn online_spans_override_the_base_prediction() {
        let lw = learner(PolicyKind::Affinity);
        let b = tile(1, 128);
        let base = lw.predict_time(&b, DeviceKind::Cpu);
        for _ in 0..2 {
            lw.observe(&b, 0, 0, DeviceKind::Cpu, base * 5.0).unwrap();
        }
        assert!((lw.predict_time(&b, DeviceKind::Cpu) - base * 5.0).abs() < 1e-9);
        // GPU cell unseen: still the base prediction.
        let gpu_base = OracleWeights::new(GpuParams::geforce_8800gt(), false)
            .predict_time(&b, DeviceKind::Gpu);
        assert_eq!(lw.predict_time(&b, DeviceKind::Gpu), gpu_base);
    }

    #[test]
    fn affinity_discounts_the_resident_class() {
        let lw = learner(PolicyKind::Affinity);
        let b = tile(1, 128);
        let ctx = DecisionCtx::default();
        let before = lw.decide(&b, &ctx).unwrap();
        // Make the GPU class resident for this shape on node 0.
        let t = lw.predict_time(&b, DeviceKind::Gpu);
        lw.observe(&b, 0, 1, DeviceKind::Gpu, t).unwrap();
        lw.observe(&b, 0, 1, DeviceKind::Gpu, t).unwrap();
        let after = lw.decide(&b, &ctx).unwrap();
        // Residency discounts GPU time, so the GPU weight grows.
        assert!(after.weights[1] > before.weights[1]);
        assert_eq!(after.arm, DeviceKind::Gpu);
        // A different node has no residency: no discount there.
        let other = lw
            .decide(
                &b,
                &DecisionCtx {
                    node: 1,
                    ..DecisionCtx::default()
                },
            )
            .unwrap();
        assert!(other.weights[1] < after.weights[1]);
    }

    #[test]
    fn bandit_decisions_are_a_pure_function_of_seed_and_buffer() {
        let a = learner(PolicyKind::Bandit);
        let b = learner(PolicyKind::Bandit);
        let ctx = DecisionCtx {
            node: 0,
            queue_depth: 3,
            inflight: 1,
        };
        for id in 0..200u64 {
            let buf = tile(id, 32 + (id % 4) as u32 * 64);
            let da = a.decide(&buf, &ctx).unwrap();
            let db = b.decide(&buf, &ctx).unwrap();
            assert_eq!(da, db, "buffer {id} diverged");
        }
        assert_eq!(a.decisions(), 200);
    }

    #[test]
    fn bandit_explores_at_the_epsilon_floor() {
        let lw = learner(PolicyKind::Bandit);
        let ctx = DecisionCtx::default();
        let explored = (0..2000u64)
            .filter(|&id| lw.decide(&tile(id, 128), &ctx).unwrap().explore)
            .count();
        // 5% floor: expect ~100 of 2000, generously bracketed.
        assert!(
            (40..=250).contains(&explored),
            "explored {explored} of 2000"
        );
    }

    #[test]
    fn bandit_learns_to_prefer_the_rewarding_arm() {
        let lw = learner(PolicyKind::Bandit);
        let ctx = DecisionCtx::default();
        // GPU spans are consistently 20x faster for this shape.
        for id in 0..60u64 {
            let buf = tile(id, 256);
            let d = lw.decide(&buf, &ctx).unwrap();
            let secs = match d.arm {
                DeviceKind::Gpu => 0.001,
                DeviceKind::Cpu => 0.02,
            };
            lw.observe(&buf, 0, 0, d.arm, secs).unwrap();
        }
        // Greedy (non-explore) decisions now pick the GPU arm.
        let verdicts: Vec<Decision> = (100..120u64)
            .map(|id| lw.decide(&tile(id, 256), &ctx).unwrap())
            .collect();
        assert!(verdicts
            .iter()
            .filter(|d| !d.explore)
            .all(|d| d.arm == DeviceKind::Gpu));
    }

    #[test]
    fn worker_observation_tallies_accrue_per_worker() {
        let lw = learner(PolicyKind::Bandit);
        let b = tile(1, 128);
        lw.observe(&b, 0, 0, DeviceKind::Cpu, 0.01).unwrap();
        lw.observe(&b, 0, 1, DeviceKind::Gpu, 0.001).unwrap();
        lw.observe(&b, 0, 1, DeviceKind::Gpu, 0.001).unwrap();
        assert_eq!(lw.observations_for(0, 0), 1);
        assert_eq!(lw.observations_for(0, 1), 2);
        assert_eq!(lw.observations_for(1, 0), 0);
        assert_eq!(lw.updates(), 3);
        // And the profile round-trips through its text form.
        let text = lw.profile_text();
        assert!(OnlineProfile::from_text(&text).is_ok());
    }
}
