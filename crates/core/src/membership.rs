//! Coordinator-side elastic membership: the Joining → Active → Draining →
//! Gone lifecycle of worker slots in a live run.
//!
//! The paper's run-time optimizations (DQAA, DBSA, DDWRR) assume a fixed
//! worker set; this module supplies the missing half of an elastic
//! service. It is deliberately backend-agnostic — the same three pieces
//! drive the sequential reference driver, the DES, the native threaded
//! runtime and the TCP backend, because all of them route through the
//! engine's Clock/Transport/Executor seam:
//!
//! * [`Membership`] — the validated state machine itself. The engine's
//!   [`crate::engine::Engine::join_worker`] /
//!   [`crate::engine::Engine::drain_worker`] calls are the Active-side
//!   effects; this registry is the coordinator's book-keeping view that
//!   rejects illegal transitions (e.g. draining a slot twice, activating
//!   a slot that already left).
//! * [`MembershipSchedule`] — a deterministic script of join/drain
//!   actions keyed on the run's completion count. Virtual-time backends
//!   replay it identically (the policy-parity suite pins sequential =
//!   DES = native per-device counts under a scripted schedule).
//! * [`Autoscaler`] + [`WorkerPool`] — a watermark policy that grows and
//!   shrinks the pool from DQAA's own congestion signals (reader queue
//!   depth, request latency) against a pluggable supplier of fresh
//!   workers.
//!
//! Warm-up: a joiner enters with a fresh request window (target 1 under
//! DQAA) and ramps up as real round-trip latencies arrive, so a cold
//! worker can neither starve (it pumps immediately on join) nor stampede
//! the readers (its demand grows one observed latency at a time). Weight
//! bootstrap comes for free from the run's shared
//! [`crate::weights::WeightProvider`]: the kNN estimator profiles are
//! per device *class*, so a joiner of an already-profiled class inherits
//! them at full fidelity.

use anthill_hetsim::DeviceKind;

/// Lifecycle phase of one member slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemberPhase {
    /// Handshake accepted, slot allocated, not yet pumping demand.
    Joining,
    /// Pumping demand and assignable.
    Active,
    /// No longer assignable; in-flight work finishing.
    Draining,
    /// Released (graceful drain completed) or dead.
    Gone,
}

/// An illegal membership transition (e.g. activating a Gone slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseError {
    /// Phase the member was actually in.
    pub from: MemberPhase,
    /// Phase the caller tried to move it to.
    pub to: MemberPhase,
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal transition {:?} -> {:?}", self.from, self.to)
    }
}

impl std::error::Error for PhaseError {}

/// One member slot as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// Hosting node (or filter, in graph runs).
    pub node: usize,
    /// Worker slot index within the node.
    pub worker: usize,
    /// Device class of the slot.
    pub kind: DeviceKind,
    /// Current lifecycle phase.
    pub phase: MemberPhase,
}

/// The coordinator's membership registry: validated Joining → Active →
/// Draining → Gone transitions over an append-only member list (slot ids
/// are stable for the life of the run, like engine worker indices).
#[derive(Debug, Clone, Default)]
pub struct Membership {
    members: Vec<Member>,
}

impl Membership {
    /// An empty registry.
    pub fn new() -> Membership {
        Membership::default()
    }

    /// Register a new member in `Joining`; returns its stable id.
    pub fn begin_join(&mut self, node: usize, worker: usize, kind: DeviceKind) -> usize {
        self.members.push(Member {
            node,
            worker,
            kind,
            phase: MemberPhase::Joining,
        });
        self.members.len() - 1
    }

    fn transition(
        &mut self,
        id: usize,
        from: MemberPhase,
        to: MemberPhase,
    ) -> Result<(), PhaseError> {
        let m = &mut self.members[id];
        if m.phase != from {
            return Err(PhaseError { from: m.phase, to });
        }
        m.phase = to;
        Ok(())
    }

    /// Joining → Active: the slot's first demand pump happened.
    pub fn activate(&mut self, id: usize) -> Result<(), PhaseError> {
        self.transition(id, MemberPhase::Joining, MemberPhase::Active)
    }

    /// Active → Draining: stop assigning, let in-flight work finish.
    pub fn begin_drain(&mut self, id: usize) -> Result<(), PhaseError> {
        self.transition(id, MemberPhase::Active, MemberPhase::Draining)
    }

    /// Draining → Gone: the graceful release completed.
    pub fn finish(&mut self, id: usize) -> Result<(), PhaseError> {
        self.transition(id, MemberPhase::Draining, MemberPhase::Gone)
    }

    /// Any live phase → Gone: the slot died (process kill, severed
    /// connection, heartbeat silence). Idempotent on Gone slots — a death
    /// is a fact, not a request.
    pub fn fail(&mut self, id: usize) {
        self.members[id].phase = MemberPhase::Gone;
    }

    /// Current phase of a member.
    pub fn phase(&self, id: usize) -> MemberPhase {
        self.members[id].phase
    }

    /// All members, in registration order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Members currently assignable (Active).
    pub fn active_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.phase == MemberPhase::Active)
            .count()
    }
}

/// One scripted membership action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberAction {
    /// Join a fresh worker of `kind` on `node`.
    Join {
        /// Hosting node (or filter) index.
        node: usize,
        /// Device class of the joiner.
        kind: DeviceKind,
    },
    /// Begin a graceful drain of an existing slot.
    Drain {
        /// Hosting node (or filter) index.
        node: usize,
        /// Worker slot index within the node.
        worker: usize,
    },
}

/// A [`MemberAction`] that fires once the run's completion count reaches
/// `after_completions`. Completion counts — not wall or virtual time —
/// key the script, so every deterministic backend replays it at exactly
/// the same point in the schedule's causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledAction {
    /// Fire when `Engine::total_done()` first reaches this value.
    pub after_completions: u64,
    /// What to do.
    pub action: MemberAction,
}

/// A deterministic script of membership changes, consumed in completion
/// order. Drivers call [`MembershipSchedule::pop_due`] after every task
/// completion and apply the returned actions through
/// [`crate::engine::Engine::join_worker`] /
/// [`crate::engine::Engine::drain_worker`].
#[derive(Debug, Clone, Default)]
pub struct MembershipSchedule {
    actions: Vec<ScheduledAction>,
    next: usize,
}

impl MembershipSchedule {
    /// A schedule from unordered actions (stable-sorted by threshold, so
    /// equal thresholds keep their listed order).
    pub fn new(mut actions: Vec<ScheduledAction>) -> MembershipSchedule {
        actions.sort_by_key(|a| a.after_completions);
        MembershipSchedule { actions, next: 0 }
    }

    /// The empty schedule (static membership).
    pub fn none() -> MembershipSchedule {
        MembershipSchedule::default()
    }

    /// Are any actions still pending?
    pub fn is_done(&self) -> bool {
        self.next >= self.actions.len()
    }

    /// Pop the next action whose threshold `completions` has reached, if
    /// any. Call in a loop — several actions may share a threshold.
    pub fn pop_due(&mut self, completions: u64) -> Option<MemberAction> {
        let a = self.actions.get(self.next)?;
        if a.after_completions <= completions {
            self.next += 1;
            Some(a.action)
        } else {
            None
        }
    }
}

/// A supplier of fresh workers for [`Autoscaler`]-driven growth. The
/// handle type is backend-specific: a connected socket on the TCP
/// backend, a device slot elsewhere.
pub trait WorkerPool {
    /// The backend-specific handle for a freshly provisioned worker.
    type Worker;

    /// Provision one new worker, or `None` when the pool is exhausted.
    fn grow(&mut self) -> Option<Self::Worker>;
}

/// Watermarks and bounds for the [`Autoscaler`].
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerConfig {
    /// Grow when the sampled reader-queue depth reaches this.
    pub queue_high: usize,
    /// Shrink only when the sampled depth is at or below this.
    pub queue_low: usize,
    /// Grow when the observed request latency reaches this (0 disables
    /// the latency trigger).
    pub latency_high_ns: u64,
    /// Never shrink below this many active workers.
    pub min_workers: usize,
    /// Never grow past this many active workers.
    pub max_workers: usize,
    /// Minimum spacing between scale actions, in nanoseconds of the
    /// driving clock — one decision per congestion episode, not one per
    /// sample.
    pub cooldown_ns: u64,
}

impl AutoscalerConfig {
    /// Conservative defaults for the open-loop load harness: grow on a
    /// backlog of 8+, shrink below 2, 50 ms decision spacing.
    pub fn standard(min_workers: usize, max_workers: usize) -> AutoscalerConfig {
        AutoscalerConfig {
            queue_high: 8,
            queue_low: 1,
            latency_high_ns: 0,
            min_workers,
            max_workers,
            cooldown_ns: 50_000_000,
        }
    }
}

/// What the autoscaler decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Provision one worker from the pool.
    Grow,
    /// Drain one worker.
    Shrink,
}

/// A hysteresis watermark policy over DQAA's own congestion signals: the
/// reader-queue depth the open-loop harness already samples and the
/// request latency the engine already histograms. Stateless apart from
/// the cooldown, so decisions are a pure function of the sampled signals
/// — deterministic under virtual time.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    last_action_ns: Option<u64>,
    grows: u64,
    shrinks: u64,
}

impl Autoscaler {
    /// A fresh policy instance.
    pub fn new(cfg: AutoscalerConfig) -> Autoscaler {
        Autoscaler {
            cfg,
            last_action_ns: None,
            grows: 0,
            shrinks: 0,
        }
    }

    /// The configured watermarks.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Scale actions taken so far, `(grows, shrinks)`.
    pub fn actions_taken(&self) -> (u64, u64) {
        (self.grows, self.shrinks)
    }

    /// One sampling step: decide from the current queue depth, the most
    /// recent request latency (if any), and the assignable worker count.
    /// Returns `None` inside the cooldown window or when the signals sit
    /// between the watermarks.
    pub fn decide(
        &mut self,
        now_ns: u64,
        queue_depth: usize,
        latency_ns: Option<u64>,
        active: usize,
    ) -> Option<ScaleAction> {
        if let Some(last) = self.last_action_ns {
            if now_ns.saturating_sub(last) < self.cfg.cooldown_ns {
                return None;
            }
        }
        let latency_hot = self.cfg.latency_high_ns > 0
            && latency_ns.is_some_and(|l| l >= self.cfg.latency_high_ns);
        let action = if (queue_depth >= self.cfg.queue_high || latency_hot)
            && active < self.cfg.max_workers
        {
            ScaleAction::Grow
        } else if queue_depth <= self.cfg.queue_low && !latency_hot && active > self.cfg.min_workers
        {
            ScaleAction::Shrink
        } else {
            return None;
        };
        self.last_action_ns = Some(now_ns);
        match action {
            ScaleAction::Grow => self.grows += 1,
            ScaleAction::Shrink => self.shrinks += 1,
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut m = Membership::new();
        let id = m.begin_join(0, 2, DeviceKind::Cpu);
        assert_eq!(m.phase(id), MemberPhase::Joining);
        m.activate(id).unwrap();
        assert_eq!(m.active_count(), 1);
        m.begin_drain(id).unwrap();
        assert_eq!(m.active_count(), 0);
        m.finish(id).unwrap();
        assert_eq!(m.phase(id), MemberPhase::Gone);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut m = Membership::new();
        let id = m.begin_join(0, 0, DeviceKind::Gpu);
        assert!(m.begin_drain(id).is_err(), "cannot drain before activate");
        m.activate(id).unwrap();
        assert!(m.activate(id).is_err(), "cannot activate twice");
        assert!(m.finish(id).is_err(), "cannot finish an active slot");
        m.begin_drain(id).unwrap();
        assert!(m.begin_drain(id).is_err(), "cannot drain twice");
        m.finish(id).unwrap();
        assert!(m.activate(id).is_err(), "gone is terminal");
        assert!(m.begin_drain(id).is_err(), "gone is terminal");
    }

    #[test]
    fn death_is_terminal_and_idempotent_from_any_phase() {
        let mut m = Membership::new();
        for _ in 0..3 {
            m.begin_join(0, 0, DeviceKind::Cpu);
        }
        m.fail(0); // from Joining
        m.activate(1).unwrap();
        m.fail(1); // from Active
        m.activate(2).unwrap();
        m.begin_drain(2).unwrap();
        m.fail(2); // from Draining
        for id in 0..3 {
            assert_eq!(m.phase(id), MemberPhase::Gone);
            m.fail(id); // idempotent
            assert_eq!(m.phase(id), MemberPhase::Gone);
        }
    }

    #[test]
    fn schedule_pops_in_threshold_order() {
        let mut s = MembershipSchedule::new(vec![
            ScheduledAction {
                after_completions: 20,
                action: MemberAction::Drain { node: 0, worker: 1 },
            },
            ScheduledAction {
                after_completions: 5,
                action: MemberAction::Join {
                    node: 0,
                    kind: DeviceKind::Cpu,
                },
            },
            ScheduledAction {
                after_completions: 5,
                action: MemberAction::Join {
                    node: 0,
                    kind: DeviceKind::Gpu,
                },
            },
        ]);
        assert!(s.pop_due(4).is_none());
        assert_eq!(
            s.pop_due(5),
            Some(MemberAction::Join {
                node: 0,
                kind: DeviceKind::Cpu
            }),
            "stable sort keeps listed order at equal thresholds"
        );
        assert_eq!(
            s.pop_due(5),
            Some(MemberAction::Join {
                node: 0,
                kind: DeviceKind::Gpu
            })
        );
        assert!(s.pop_due(19).is_none());
        assert_eq!(
            s.pop_due(100),
            Some(MemberAction::Drain { node: 0, worker: 1 })
        );
        assert!(s.is_done());
        assert!(s.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn autoscaler_grows_on_backlog_and_respects_bounds() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            queue_high: 4,
            queue_low: 0,
            latency_high_ns: 0,
            min_workers: 1,
            max_workers: 2,
            cooldown_ns: 10,
        });
        assert_eq!(a.decide(0, 10, None, 1), Some(ScaleAction::Grow));
        assert_eq!(a.decide(5, 10, None, 1), None, "cooldown");
        assert_eq!(a.decide(20, 10, None, 2), None, "at max_workers");
        assert_eq!(a.decide(40, 2, None, 2), None, "between watermarks");
        assert_eq!(a.decide(60, 0, None, 2), Some(ScaleAction::Shrink));
        assert_eq!(a.decide(80, 0, None, 1), None, "at min_workers");
        assert_eq!(a.actions_taken(), (1, 1));
    }

    #[test]
    fn autoscaler_latency_trigger_grows_and_blocks_shrink() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            queue_high: 100,
            queue_low: 1,
            latency_high_ns: 1_000,
            min_workers: 1,
            max_workers: 4,
            cooldown_ns: 0,
        });
        assert_eq!(a.decide(0, 0, Some(5_000), 2), Some(ScaleAction::Grow));
        assert_eq!(
            a.decide(1, 0, Some(5_000), 4),
            None,
            "hot latency blocks the shrink branch too"
        );
        assert_eq!(a.decide(2, 0, Some(10), 4), Some(ScaleAction::Shrink));
    }
}
