//! Offline shim for the `parking_lot` crate: the API subset this workspace
//! uses (`Mutex`, `Condvar`, `RwLock`), implemented over `std::sync`.
//!
//! Differences from std are papered over to match parking_lot semantics:
//! no lock poisoning (a poisoned std lock is recovered transparently) and
//! `Condvar::wait` takes the guard by `&mut` instead of by value.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock (parking_lot-style: `lock()` returns the guard
/// directly, never a poison error).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// Outcome of a [`Condvar::wait_for`] call (parking_lot-compatible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style
/// `wait(&mut guard)` signature).
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Block until notified or the timeout elapses; the guard is released
    /// while waiting and re-acquired before returning. Returns a result
    /// whose [`WaitTimeoutResult::timed_out`] reports which happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard holds the lock");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (parking_lot-style, no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new RwLock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_allows_readers() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
