//! Offline shim for the `criterion` crate: the API subset the workspace's
//! benches use (`Criterion`, groups, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros), backed by a simple wall-clock timer.
//!
//! Each benchmark is warmed up once, then timed over enough iterations to
//! fill a short measurement window; mean time per iteration (and derived
//! element throughput, when declared) is printed to stdout. There is no
//! statistical analysis or HTML report — the goal is comparable numbers
//! and an identical compile surface, not criterion's rigor.
//!
//! Honors `CRITERION_QUICK=1` to shrink the measurement window (used by CI
//! smoke runs), and a `--test` CLI argument (criterion's compile-check
//! mode): each benchmark runs exactly one warm-up iteration and skips the
//! timed pass, so `cargo bench -- --test` validates that every bench
//! builds and executes without paying for measurement.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Id with a parameter only.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            measurement_window: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(400)
            },
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let window = self.measurement_window;
        run_one(name, None, window, self.test_mode, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes iteration counts from
    /// the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_window = d.min(Duration::from_secs(2));
        self
    }

    /// Benchmark a named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.throughput,
            self.criterion.measurement_window,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.throughput,
            self.criterion.measurement_window,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    window: Duration,
    test_mode: bool,
    mut f: F,
) {
    // Warm-up + calibration pass: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("{label:<50} ok (--test)");
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<50} {:>14.1} ns/iter  x{iters}{rate}", mean_ns);
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs >= 2, "warm-up plus measurement iterations");
    }
}
