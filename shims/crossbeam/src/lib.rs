//! Offline shim for the `crossbeam` crate: the `channel` subset this
//! workspace uses, mapped onto `std::sync::mpsc`.

/// Multi-producer channels (std::sync::mpsc with crossbeam's constructor
/// names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded MPSC channel (`crossbeam::channel::unbounded`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
