//! Offline shim for the `crossbeam` crate: the `channel` and `thread`
//! subsets this workspace uses, mapped onto `std::sync::mpsc` and
//! `std::thread::scope`.

/// Multi-producer channels (std::sync::mpsc with crossbeam's constructor
/// names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded MPSC channel (`crossbeam::channel::unbounded`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (`crossbeam::thread::scope`), wrapping
/// `std::thread::scope`. Matches crossbeam's API shape: the scope closure
/// and every spawned closure receive a `&Scope` so workers can spawn
/// further workers, and `scope` returns `thread::Result` (Err if any
/// unjoined panic escaped the scope).
pub mod thread {
    pub use std::thread::Result;

    /// Handle for spawning threads tied to an enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope again so
        /// it can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Panics from unjoined threads surface as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn scoped_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
