//! Offline shim: a minimal readiness poller in the spirit of `mio`'s
//! `Poll`, plus best-effort core affinity, with zero external crates.
//!
//! The build environment has no registry access, so — like the other
//! `shims/` crates — this implements the small subset the repo needs
//! directly over the platform's C library, which is already linked by
//! `std` on every unix target:
//!
//! * **Linux**: `epoll_create1` / `epoll_ctl` / `epoll_wait`
//!   (level-triggered, O(ready) wakeups — the production path).
//! * **Other unix**: `poll(2)`, rebuilding the pollfd array from the
//!   registration table on every wait (O(n) per wait, fine for the
//!   fan-outs the tests run at).
//! * **Anything else**: a degraded portable path that reports every
//!   registered source as ready after a short bounded sleep. Callers are
//!   required to use non-blocking sources, so a spurious "ready" costs
//!   one `WouldBlock` — correctness is preserved, only efficiency is
//!   lost.
//!
//! The API contract the event loop relies on (DESIGN.md §15):
//!
//! * Level-triggered: a source that still has readable bytes (or writable
//!   space) is reported again on the next `wait`.
//! * Spurious readiness is allowed; *missed* readiness is not — if a
//!   registered source is ready and its interest includes that direction,
//!   some future `wait` must report it.
//! * `wait` returns early on any event, or after `timeout`, whichever
//!   comes first. A `None` timeout means "sleep until an event".
//!
//! [`bind_to_core`] is the core-binding idiom from the timely/graspan
//! experiments (SNIPPETS.md): pin the calling thread to one CPU so the
//! hot loop stops migrating between caches. It is a silent no-op where
//! the platform offers no affinity call.

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source has bytes to read (or a pending accept).
    pub readable: bool,
    /// Wake when the source can accept more written bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the source was registered with.
    pub token: usize,
    /// Readable now (level-triggered; may be spurious).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Peer hung up or the source errored; the owner should read to EOF
    /// and retire it.
    pub hangup: bool,
}

/// A registered source, kept for the poll(2)/fallback paths and for
/// re-registering interest on the epoll path.
#[derive(Debug, Clone, Copy)]
struct Registration {
    fd: RawFd,
    token: usize,
    interest: Interest,
}

/// The readiness poller. One per event loop; not thread-safe by design
/// (the event loop is single-threaded — that is the point).
#[derive(Debug)]
pub struct Poller {
    regs: Vec<Registration>,
    #[cfg(target_os = "linux")]
    epfd: RawFd,
}

impl Poller {
    /// Create a poller. Fails only where the OS refuses an epoll instance.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                regs: Vec::new(),
                epfd,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller { regs: Vec::new() })
        }
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Register `fd` under `token`. Tokens must be unique per live
    /// registration; the fd must already be non-blocking.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        debug_assert!(
            !self.regs.iter().any(|r| r.token == token),
            "token {token} registered twice"
        );
        #[cfg(target_os = "linux")]
        sys::epoll_op(self.epfd, sys::EPOLL_CTL_ADD, fd, token, interest)?;
        self.regs.push(Registration {
            fd,
            token,
            interest,
        });
        Ok(())
    }

    /// Change the interest set of an existing registration.
    pub fn reregister(&mut self, token: usize, interest: Interest) -> io::Result<()> {
        let Some(reg) = self.regs.iter_mut().find(|r| r.token == token) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no registration for token {token}"),
            ));
        };
        if reg.interest == interest {
            return Ok(());
        }
        reg.interest = interest;
        #[cfg(target_os = "linux")]
        {
            let fd = reg.fd;
            sys::epoll_op(self.epfd, sys::EPOLL_CTL_MOD, fd, token, interest)?;
        }
        Ok(())
    }

    /// Remove a registration. Harmless if the token is already gone
    /// (close() on Linux drops the epoll entry on its own).
    pub fn deregister(&mut self, token: usize) {
        if let Some(pos) = self.regs.iter().position(|r| r.token == token) {
            let reg = self.regs.swap_remove(pos);
            #[cfg(target_os = "linux")]
            {
                let _ = sys::epoll_op(
                    self.epfd,
                    sys::EPOLL_CTL_DEL,
                    reg.fd,
                    reg.token,
                    Interest::READ,
                );
            }
            #[cfg(not(target_os = "linux"))]
            let _ = reg;
        }
    }

    /// Block until a registered source is ready or `timeout` passes,
    /// appending reports to `events` (cleared first). Returns the number
    /// of events delivered.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        if self.regs.is_empty() {
            // Nothing to watch: honor the timeout as a plain sleep so the
            // caller's timer wheel still ticks.
            if let Some(t) = timeout {
                std::thread::sleep(t.min(Duration::from_millis(50)));
            }
            return Ok(0);
        }
        #[cfg(target_os = "linux")]
        {
            sys::epoll_wait_into(self.epfd, events, timeout)
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            sys::poll_wait_into(&self.regs, events, timeout)
        }
        #[cfg(not(unix))]
        {
            // Degraded portable path: a bounded sleep, then report every
            // registered interest as ready. Non-blocking sources turn the
            // false positives into cheap WouldBlocks.
            let nap = timeout.unwrap_or(Duration::from_millis(1));
            std::thread::sleep(nap.min(Duration::from_millis(1)));
            for r in &self.regs {
                events.push(Event {
                    token: r.token,
                    readable: r.interest.readable,
                    writable: r.interest.writable,
                    hangup: false,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Pin the calling thread to logical CPU `index % available_cores`.
/// Returns `true` when the pin took effect, `false` where unsupported —
/// callers treat `false` as a recorded no-op, never an error.
pub fn bind_to_core(index: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        sys::bind_to_core(index)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = index;
        false
    }
}

/// Number of logical CPUs visible to this process (affinity-mask aware on
/// Linux), or 1 where undetectable.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_ulong, c_void};
    use std::time::Duration;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` with the kernel's packed layout on x86-64 and
    /// the natural layout elsewhere (matching the glibc definition).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub u64_: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const c_ulong) -> c_int;
        fn sched_getaffinity(pid: c_int, cpusetsize: usize, mask: *mut c_void) -> c_int;
    }

    pub fn epoll_op(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: {
                let mut e = EPOLLRDHUP;
                if interest.readable {
                    e |= EPOLLIN;
                }
                if interest.writable {
                    e |= EPOLLOUT;
                }
                e
            },
            u64_: token as u64,
        };
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn epoll_wait_into(
        epfd: RawFd,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, u64_: 0 }; 256];
        let ms: c_int = match timeout {
            None => -1,
            // Round up so a 100 µs timeout does not spin at 0 ms.
            Some(t) => t
                .as_millis()
                .min(i32::MAX as u128)
                .max(u128::from(!t.is_zero())) as c_int,
        };
        let n = loop {
            let rc = unsafe { epoll_wait(epfd, raw.as_mut_ptr(), raw.len() as c_int, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for e in &raw[..n] {
            let bits = e.events;
            let token = e.u64_ as usize;
            events.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR) != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
            });
        }
        Ok(n)
    }

    const CPU_SET_WORDS: usize = 16; // 1024 CPUs, glibc's cpu_set_t size

    pub fn bind_to_core(index: usize) -> bool {
        // Pin within the CPUs this process may already be restricted to.
        let mut allowed = [0 as c_ulong; CPU_SET_WORDS];
        let got = unsafe {
            sched_getaffinity(
                0,
                CPU_SET_WORDS * std::mem::size_of::<c_ulong>(),
                allowed.as_mut_ptr() as *mut c_void,
            )
        };
        let candidates: Vec<usize> = if got == 0 {
            (0..CPU_SET_WORDS * c_ulong_bits())
                .filter(|&c| allowed[c / c_ulong_bits()] & (1 << (c % c_ulong_bits())) != 0)
                .collect()
        } else {
            (0..super::available_cores()).collect()
        };
        if candidates.is_empty() {
            return false;
        }
        let cpu = candidates[index % candidates.len()];
        let mut mask = [0 as c_ulong; CPU_SET_WORDS];
        mask[cpu / c_ulong_bits()] |= 1 << (cpu % c_ulong_bits());
        let rc = unsafe {
            sched_setaffinity(
                0,
                CPU_SET_WORDS * std::mem::size_of::<c_ulong>(),
                mask.as_ptr(),
            )
        };
        rc == 0
    }

    const fn c_ulong_bits() -> usize {
        std::mem::size_of::<c_ulong>() * 8
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest, Registration};
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    pub fn poll_wait_into(
        regs: &[Registration],
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let mut fds: Vec<PollFd> = regs
            .iter()
            .map(|r| PollFd {
                fd: r.fd,
                events: {
                    let mut e = 0;
                    if r.interest.readable {
                        e |= POLLIN;
                    }
                    if r.interest.writable {
                        e |= POLLOUT;
                    }
                    e
                },
                revents: 0,
            })
            .collect();
        let ms: c_int = match timeout {
            None => -1,
            Some(t) => t
                .as_millis()
                .min(i32::MAX as u128)
                .max(u128::from(!t.is_zero())) as c_int,
        };
        let n = loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for (reg, pfd) in regs.iter().zip(&fds) {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token: reg.token,
                readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: pfd.revents & (POLLOUT | POLLERR) != 0,
                hangup: pfd.revents & (POLLHUP | POLLERR) != 0,
            });
        }
        let _ = Interest::READ; // keep the import meaningful on this path
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[cfg(unix)]
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    #[cfg(unix)]
    fn reports_readable_when_bytes_arrive() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut p = Poller::new().expect("poller");
        p.register(b.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        // Nothing yet: a short wait times out empty.
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(
            events.iter().all(|e| !e.readable),
            "spurious read: {events:?}"
        );
        a.write_all(b"ping").expect("write");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            p.wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readable never reported");
        }
        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    #[cfg(unix)]
    fn writable_interest_fires_and_can_be_dropped() {
        let (_a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut p = Poller::new().expect("poller");
        p.register(b.as_raw_fd(), 3, Interest::READ_WRITE)
            .expect("register");
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            p.wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "writable never reported");
        }
        // Drop write interest: an idle socket must stop waking the poller.
        p.reregister(3, Interest::READ).expect("reregister");
        p.wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(
            events.iter().all(|e| !(e.token == 3 && e.writable)),
            "writable still reported after interest dropped: {events:?}"
        );
        p.deregister(3);
        assert!(p.is_empty());
    }

    #[test]
    #[cfg(unix)]
    fn hangup_is_reported() {
        let (a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut p = Poller::new().expect("poller");
        p.register(b.as_raw_fd(), 1, Interest::READ)
            .expect("register");
        drop(a);
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            p.wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if events
                .iter()
                .any(|e| e.token == 1 && (e.hangup || e.readable))
            {
                break;
            }
            assert!(Instant::now() < deadline, "hangup never reported");
        }
    }

    #[test]
    fn empty_poller_sleeps_the_timeout() {
        let mut p = Poller::new().expect("poller");
        let mut events = Vec::new();
        let t0 = Instant::now();
        p.wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn bind_to_core_never_panics() {
        // Whatever the platform answers, the call is a safe no-op-or-pin.
        let pinned = bind_to_core(0);
        let _ = bind_to_core(usize::MAX);
        if pinned {
            assert!(available_cores() >= 1);
        }
    }
}
