//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, range
//! strategies, tuple strategies, `prop::collection::vec`, `prop::bool::ANY`
//! and `prop::num::f64::*` — on top of a deterministic splitmix64 RNG.
//!
//! Semantics differ from real proptest in two deliberate ways: no input
//! shrinking (a failing case panics with its case index so it can be
//! replayed), and the case count is fixed at [`CASES`] per property. Every
//! run draws the same value sequence, so failures are reproducible without
//! a regressions file.

use std::ops::Range;

/// Cases generated per property. Real proptest defaults to 256; 64 keeps
/// the heavier simulation-backed properties fast while still exploring the
/// input space.
pub const CASES: u64 = 64;

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Generator for one named property case: the stream depends only on
    /// the test name and case index, never on execution order.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator: the (non-shrinking) analogue of proptest's trait of
/// the same name.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy returning one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Size specification for collection strategies: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest admissible length.
    pub min: usize,
    /// Largest admissible length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

/// Nested strategy namespace mirroring `proptest::prop`.
pub mod prop {
    use super::{SizeRange, Strategy, TestRng};

    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from the size
        /// range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, len)` — `len` may be an exact
        /// `usize` or a `Range<usize>`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64 + 1;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies (`prop::bool`).
    pub mod bool {
        use super::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Numeric strategies (`prop::num`).
    pub mod num {
        /// f64 strategies.
        pub mod f64 {
            use super::super::{Strategy, TestRng};

            /// Finite, non-NaN f64 values across a wide magnitude range.
            #[derive(Debug, Clone, Copy)]
            pub struct Normal;

            /// `prop::num::f64::NORMAL` (finite, non-zero-exponent floats).
            pub const NORMAL: Normal = Normal;

            impl Strategy for Normal {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    // Sign * mantissa in [1,2) * 2^[-60, 60]: finite and
                    // well away from subnormals.
                    let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                    let mantissa = 1.0 + rng.next_f64();
                    let exp = rng.below(121) as i32 - 60;
                    sign * mantissa * f64::powi(2.0, exp)
                }
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestRng,
    };
}

/// Assert inside a property (panics with the failing expression; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(
            TestRng::for_case("x", 0).next_u64(),
            TestRng::for_case("y", 0).next_u64()
        );
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0, n in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in prop::collection::vec(0u32..10, 2..6),
            fixed in prop::collection::vec(prop::bool::ANY, 3),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(fixed.len(), 3);
        }
    }
}
