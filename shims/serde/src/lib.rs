//! Offline shim for `serde`: the workspace derives `Serialize` /
//! `Deserialize` on a few types but never serializes through serde (the
//! estimator's persistence layer is a hand-rolled text format), so the
//! derives expand to nothing. This keeps the source identical to what it
//! would be with real serde available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
