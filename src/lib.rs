//! # anthill-repro — reproduction of "Run-time optimizations for
//! replicated dataflows on heterogeneous environments" (HPDC 2010)
//!
//! Facade crate re-exporting the workspace:
//!
//! * [`simkit`] — deterministic discrete-event simulation engine
//! * [`hetsim`] — CPU/GPU/network hardware models (the testbed substitute)
//! * [`estimator`] — the kNN relative-performance estimator (Section 4)
//! * [`core`] — the replicated-dataflow runtime: filter-stream model,
//!   DDFCFS/DDWRR/ODDS scheduling, DQAA + DBSA, adaptive transfers
//!   (Sections 3 and 5)
//! * [`kernels`] — real computational kernels (NBIA image analysis and the
//!   Table 1 benchmark applications)
//! * [`apps`] — NBIA and VI on the runtime (Sections 2 and 6)
//! * [`mod@bench`] — the experiment harness regenerating every table and
//!   figure (Section 6); see the `repro` binary
//!
//! Start with `examples/quickstart.rs`, then `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use anthill as core;
pub use anthill_apps as apps;
pub use anthill_bench as bench;
pub use anthill_estimator as estimator;
pub use anthill_hetsim as hetsim;
pub use anthill_kernels as kernels;
pub use anthill_simkit as simkit;
