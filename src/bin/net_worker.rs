//! `net_worker` — a standalone worker process for the `anthill::net`
//! backend.
//!
//! Usage: `net_worker <coordinator-addr> [behavior]`
//!
//! `behavior` is `identity` (default), `recirc:N`, or `busy:N` (see
//! `anthill::net::Behavior::parse`). The process connects to the
//! coordinator, serves the worker protocol until `Shutdown` or EOF, and
//! exits 0. The chaos suite spawns and kills these processes mid-run to
//! prove the coordinator's recovery path against real process death.

use std::process::ExitCode;

use anthill_repro::core::net::{connect_and_run, Behavior};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, behavior) = match args.as_slice() {
        [addr] => (addr.as_str(), Behavior::Identity),
        [addr, spec] => match Behavior::parse(spec) {
            Some(b) => (addr.as_str(), b),
            None => {
                eprintln!("net_worker: unknown behavior '{spec}' (identity | recirc:N | busy:N)");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: net_worker <coordinator-addr> [identity|recirc:N|busy:N]");
            return ExitCode::from(2);
        }
    };
    match connect_and_run(addr, behavior) {
        Ok(_executed) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("net_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
