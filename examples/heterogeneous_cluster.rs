//! The paper's headline experiment in one program: NBIA on a simulated
//! heterogeneous cluster under all three stream policies, showing why
//! ODDS roughly doubles DDWRR's performance when half the nodes have no
//! GPU (paper Figures 10 and 14).
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use anthill_repro::core::policy::Policy;
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::hetsim::{ClusterSpec, DeviceKind};

fn main() {
    // The paper's base workload: 26,742 tiles, 32² and 512² levels, 8% of
    // the tiles recalculated at high resolution.
    let workload = WorkloadSpec::paper_base(0.08);
    println!(
        "workload: {} tiles, {} recalculated at 512x512; single-core time {:.0}s",
        workload.tiles,
        workload.recalc_count(),
        workload.cpu_baseline().as_secs_f64()
    );
    println!();

    // Cluster: one CPU+GPU node plus one dual-core CPU-only node — the
    // heterogeneous base case of Section 6.4.2.
    for (name, policy) in [
        ("DDFCFS (Anthill default)", Policy::ddfcfs(8)),
        ("DDWRR  (intra-filter)", Policy::ddwrr(30)),
        ("ODDS   (inter-filter)", Policy::odds()),
    ] {
        let cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), policy);
        let report = run_nbia(&cfg, &workload);
        println!(
            "{name}\n  speedup {:6.2}x over one CPU core  (makespan {:.2}s)",
            report.speedup(),
            report.makespan.as_secs_f64()
        );
        println!(
            "  GPU processed {:5.1}% of 32x32 tiles and {:5.1}% of 512x512 tiles",
            report.share_pct(DeviceKind::Gpu, 0),
            report.share_pct(DeviceKind::Gpu, 1)
        );
        println!(
            "  mean utilization: CPU {:4.1}%, GPU {:4.1}%",
            100.0 * report.mean_utilization(DeviceKind::Cpu),
            100.0 * report.mean_utilization(DeviceKind::Gpu)
        );
        println!();
    }

    println!("ODDS wins because its sender-side selection (DBSA) routes each");
    println!("512x512 tile to the GPU node and the 32x32 tiles to the CPU-only");
    println!("node, while its dynamic windows (DQAA) keep queues short enough");
    println!("to avoid end-of-run load imbalance.");
}
