//! The VI microbenchmark (paper Section 6.2): really increment a vector in
//! chunks, then replay the same workload through the calibrated GPU
//! transfer pipeline to see why the number of concurrent copies matters —
//! and how Algorithm 1 finds it automatically.
//!
//! ```text
//! cargo run --release --example vi_transfers
//! ```

use anthill_repro::apps::vi::{run_reference, ViWorkload};
use anthill_repro::core::transfer::pipeline;
use anthill_repro::hetsim::GpuParams;

fn main() {
    // 1. The real computation (CPU reference): increment 4M integers in
    //    100K chunks, six passes each.
    let mut vector: Vec<u32> = (0..4_000_000).collect();
    let t0 = std::time::Instant::now();
    run_reference(&mut vector, 100_000);
    println!(
        "CPU reference: incremented {} elements in {:?} (checksum {})",
        vector.len(),
        t0.elapsed(),
        vector.iter().take(5).map(|&v| v as u64).sum::<u64>()
    );
    println!();

    // 2. The same workload shape on the modeled GPU: sweep the number of
    //    concurrent events / CUDA streams.
    let gpu = GpuParams::geforce_8800gt();
    let w = ViWorkload {
        vector_len: 36_000_000, // 1/10 of the paper's vector for a fast demo
        ..ViWorkload::paper(100_000)
    };
    let shapes = w.shapes();
    println!("modeled GPU, {} chunks of 100K elements:", shapes.len());
    println!("{:<10} {:>12}", "streams", "exec time");
    let mut best = (0usize, f64::INFINITY);
    for s in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let t = pipeline::run_async_static(&gpu, &shapes, s)
            .makespan
            .as_secs_f64();
        if t < best.1 {
            best = (s, t);
        }
        let bar = "#".repeat((t * 12.0) as usize);
        println!("{s:<10} {t:>10.2}s  {bar}");
    }
    let (adaptive, trace) = pipeline::run_async_adaptive(&gpu, &shapes);
    println!();
    println!(
        "best static: {} streams at {:.2}s; Algorithm 1 (adaptive): {:.2}s",
        best.0,
        best.1,
        adaptive.makespan.as_secs_f64()
    );
    println!(
        "controller trajectory (streams per batch): {:?} ...",
        &trace[..trace.len().min(12)]
    );
}
