//! A tour of the performance estimator (paper Section 4): benchmark an
//! application, fit the kNN model, and see why *relative* performance is
//! predictable where absolute times are not. Ends by measuring a real CPU
//! kernel to show the profile format is the same for measured data.
//!
//! ```text
//! cargo run --release --example estimator_tour
//! ```

use std::time::Instant;

use anthill_repro::apps::bench_suite::BenchApp;
use anthill_repro::estimator::{cross_validate, params, DeviceClass, KnnEstimator, ProfileStore};

fn main() {
    // Phase one: a 30-job benchmark profile of the NBIA component.
    let profile = BenchApp::NbiaComponent.generate_profile(7, 30);
    println!(
        "phase 1: benchmarked {} jobs of '{}' on CPU and GPU",
        profile.len(),
        profile.app
    );

    // Phase two: fit the kNN model (the paper's k = 2).
    let est = KnnEstimator::fit_default(profile.clone());
    println!("phase 2: fitted kNN estimator (k = {})", est.k());
    println!();

    println!("queries (tile side -> predicted GPU-vs-CPU speedup):");
    for side in [32.0, 64.0, 128.0, 256.0, 512.0] {
        let speedup = est
            .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![side])
            .expect("profile covers both devices");
        let bar = "#".repeat(speedup.round() as usize);
        println!("  {side:>5}px  {speedup:6.2}x  {bar}");
    }
    println!();

    // The Table 1 methodology: 10-fold cross-validation.
    let cv = cross_validate(&profile, 2, 10);
    println!(
        "10-fold CV: speedup error {:.1}%, direct CPU-time error {:.1}%",
        cv.speedup_mape, cv.cpu_time_mape
    );
    println!("(relative performance is the easier prediction — Section 4)");
    println!();

    // Profiles can also hold *measured* times: run a real kernel.
    println!("measuring the real Black-Scholes kernel:");
    let mut measured = ProfileStore::new("black-scholes-measured");
    for scale in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let t0 = Instant::now();
        let checksum = BenchApp::BlackScholes.execute_cpu(scale);
        let secs = t0.elapsed().as_secs_f64();
        // Pair the measured CPU time with the modeled GPU time.
        measured.add_cpu_gpu(params![scale], secs, secs / 11.5);
        println!("  scale {scale:.1}: {secs:.6}s (checksum {checksum:.2})");
    }
    let est2 = KnnEstimator::fit(measured.clone(), 1);
    let t = est2
        .predict_time(DeviceClass::CPU, &params![0.5])
        .expect("measured profile");
    println!("predicted CPU time at scale 0.5: {t:.6}s");
    println!();

    // Phase-one profiles persist to disk for later runs (paper Figure 3).
    let text = anthill_repro::estimator::persist::to_text(&measured);
    let restored = anthill_repro::estimator::persist::from_text(&text).expect("parses");
    println!(
        "profile round-trips through its on-disk format: {} rows, app '{}'",
        restored.len(),
        restored.app
    );
}
