//! The Virtual Microscope (the paper's reference [8]) on the native
//! runtime: a three-filter dataflow — read/decompress → zoom → composite —
//! serving interactive viewport queries over a synthesized whole slide.
//! Demonstrates a genuinely multi-stage pipeline with a replicated,
//! stateful compositor.
//!
//! ```text
//! cargo run --release --example virtual_microscope
//! ```

use anthill_repro::apps::vm::{run_queries, Query, Slide};
use anthill_repro::core::local::{ExecMode, WorkerSpec};
use anthill_repro::core::policy::PolicyKind;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{DeviceKind, GpuParams};

fn main() {
    let slide = Slide {
        cols: 24,
        rows: 24,
        tile_side: 64,
        seed: 1848,
    };
    println!(
        "slide: {}x{} tiles of {}px ({} Mpixel full resolution)",
        slide.cols,
        slide.rows,
        slide.tile_side,
        u64::from(slide.cols) * u64::from(slide.rows) * u64::from(slide.tile_side).pow(2)
            / 1_000_000
    );

    // A user panning and zooming: overview first, then two detail views.
    let queries = vec![
        Query {
            id: 0,
            col0: 0,
            row0: 0,
            width: 24,
            height: 24,
            zoom: 3,
        },
        Query {
            id: 1,
            col0: 4,
            row0: 6,
            width: 6,
            height: 4,
            zoom: 1,
        },
        Query {
            id: 2,
            col0: 15,
            row0: 12,
            width: 4,
            height: 4,
            zoom: 0,
        },
    ];

    let cpu = WorkerSpec {
        kind: DeviceKind::Cpu,
        mode: ExecMode::Native,
    };
    let gpu = WorkerSpec {
        kind: DeviceKind::Gpu,
        mode: ExecMode::Emulated { scale: 1e-4 },
    };
    // Read is I/O-ish (two CPU threads); zoom is the accelerator stage;
    // composite is cheap (one thread).
    let workers = vec![vec![cpu; 2], vec![cpu, gpu], vec![cpu]];

    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let t0 = std::time::Instant::now();
    let (rendered, report) = run_queries(&slide, &queries, PolicyKind::DdWrr, workers, &weights);
    println!(
        "served {} viewports ({} tile tasks through 3 filters) in {:?}",
        rendered.len(),
        queries.iter().map(Query::tile_count).sum::<u32>(),
        t0.elapsed()
    );
    for r in &rendered {
        println!(
            "  query {}: {}x{} tiles at zoom {} -> {}px tiles, mean luminance {:.1}",
            r.query.id, r.query.width, r.query.height, r.query.zoom, r.tile_side, r.mean_luma
        );
    }
    println!(
        "zoom stage split: CPU {} / GPU {} tasks",
        (0..8)
            .map(|l| report.count(1, DeviceKind::Cpu, l))
            .sum::<u64>(),
        (0..8)
            .map(|l| report.count(1, DeviceKind::Gpu, l))
            .sum::<u64>(),
    );
}
