//! The NBIA biomedical pipeline end to end on the native runtime: generate
//! synthetic tissue tiles, convert colors, extract GLCM/LBP texture
//! features, classify stromal development with a hypothesis test, and
//! recirculate low-confidence tiles at a higher resolution (the control
//! flow of the paper's Figure 1) — computing real values throughout.
//!
//! ```text
//! cargo run --release --example nbia_pipeline
//! ```

use anthill_repro::apps::nbia::{run_local, NbiaLocalConfig};
use anthill_repro::core::local::{ExecMode, WorkerSpec};
use anthill_repro::core::policy::PolicyKind;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{DeviceKind, GpuParams};
use anthill_repro::kernels::tiles::TileClass;

fn main() {
    let config = NbiaLocalConfig {
        tiles: 120,
        low_side: 32,
        high_side: 128,
        confidence_threshold: 0.88,
        seed: 2010,
        policy: PolicyKind::DdWrr,
        workers: vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            },
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            },
            // A third thread standing in for the GPU manager (emulated
            // device occupancy, real computation).
            WorkerSpec {
                kind: DeviceKind::Gpu,
                mode: ExecMode::Emulated { scale: 1e-3 },
            },
        ],
    };
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let (results, report) = run_local(&config, &weights);

    let mut correct = 0usize;
    let mut per_level = [0usize; 8];
    let mut per_class = [(0usize, 0usize); 3];
    for r in &results {
        if r.predicted == r.truth {
            correct += 1;
        }
        per_level[r.level as usize] += 1;
        let idx = TileClass::ALL.iter().position(|c| *c == r.truth).unwrap();
        per_class[idx].1 += 1;
        if r.predicted == r.truth {
            per_class[idx].0 += 1;
        }
    }

    println!("classified {} tiles in {:?}", results.len(), report.elapsed,);
    let mut side = config.low_side;
    for &n in per_level.iter() {
        if side > config.high_side {
            break;
        }
        println!("  accepted at {side}x{side}: {n}");
        side *= 2;
    }
    println!(
        "accuracy: {}/{} ({:.1}%)",
        correct,
        results.len(),
        100.0 * correct as f64 / results.len() as f64
    );
    for (class, (ok, total)) in TileClass::ALL.iter().zip(per_class) {
        println!("  {class:?}: {ok}/{total}");
    }
    println!(
        "work split: CPU {} tasks, GPU {} tasks",
        report.count(0, DeviceKind::Cpu, 0) + report.count(0, DeviceKind::Cpu, 1),
        report.count(0, DeviceKind::Gpu, 0) + report.count(0, DeviceKind::Gpu, 1),
    );
}
