//! Quickstart: build a replicated dataflow with heterogeneous handlers,
//! run it on the native threaded runtime with DDWRR scheduling, and watch
//! the scheduler steer work to the right device class.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use anthill_repro::core::buffer::{BufferId, DataBuffer};
use anthill_repro::core::local::{Emitter, ExecMode, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill_repro::core::policy::PolicyKind;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::estimator::TaskParams;
use anthill_repro::hetsim::{DeviceKind, GpuParams, NbiaCostModel};

/// A filter that squares numbers — with, notionally, a CPU and a GPU
/// version of its handler (the runtime tells the handler which device
/// invoked it, as Anthill's per-device event handlers do).
struct Squarer;

impl LocalFilter for Squarer {
    fn handle(&self, device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let x = *task.payload.downcast::<f64>().expect("f64 payload");
        // Both versions compute the same result; a real deployment would
        // dispatch to a CUDA kernel for DeviceKind::Gpu.
        let y = match device {
            DeviceKind::Cpu => x * x,
            DeviceKind::Gpu => x * x,
        };
        out.forward(LocalTask::new(task.buffer, y));
    }
}

fn main() {
    // Task costs come from the paper's calibrated NBIA model: small tiles
    // are CPU-friendly, large tiles are 30x faster on the GPU.
    let model = NbiaCostModel::paper_calibrated();
    let mut sources = Vec::new();
    for i in 0..200u64 {
        let side = if i % 10 == 0 { 512 } else { 32 };
        sources.push(LocalTask::new(
            DataBuffer {
                id: BufferId(i),
                params: TaskParams::nums(&[f64::from(side)]),
                shape: model.tile(side),
                level: u8::from(side > 32),
                task: i,
            },
            f64::from(i as u32),
        ));
    }

    // One CPU worker and one emulated GPU worker; DDWRR sorts the shared
    // queue by each device's predicted advantage.
    let mut pipeline = Pipeline::new(PolicyKind::DdWrr);
    pipeline.add_stage(
        Arc::new(Squarer),
        vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Emulated { scale: 0.01 },
            },
            WorkerSpec {
                kind: DeviceKind::Gpu,
                mode: ExecMode::Emulated { scale: 0.01 },
            },
        ],
    );

    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let (outputs, report) = pipeline.run(sources, &weights);

    println!("processed {} tasks in {:?}", outputs.len(), report.elapsed);
    for kind in [DeviceKind::Cpu, DeviceKind::Gpu] {
        println!(
            "  {kind}: {:>4} small tiles, {:>3} large tiles",
            report.count(0, kind, 0),
            report.count(0, kind, 1),
        );
    }
    let sum: f64 = outputs
        .iter()
        .map(|t| *t.payload.downcast_ref::<f64>().unwrap())
        .sum();
    println!("checksum of squares: {sum}");
    println!();
    println!("DDWRR steered the 512x512 tiles to the GPU worker and kept");
    println!("the CPU worker busy with 32x32 tiles — the behaviour behind");
    println!("the paper's Figure 8 / Table 4.");
}
